//! Property value ranges (`E_i`) and feasible subspaces (`v_F(a_i)`).
//!
//! A [`Domain`] is the set of values a property may take. The paper's
//! examples mix continuous quantities (inductance, transistor width),
//! discrete numeric choices (number of resonator beams), and symbolic values
//! (abstraction levels), so domains come in four flavours. All numeric
//! flavours can be narrowed by interval propagation; symbolic flavours are
//! narrowed only by explicit binding.

use crate::interval::Interval;
use crate::value::{Value, VALUE_EPS};
use std::fmt;

/// The set of values a design property may currently take.
///
/// # Examples
///
/// ```
/// use adpm_constraint::{Domain, Interval, Value};
/// let freq_ind = Domain::interval(0.0, 0.5); // µH
/// let narrowed = freq_ind.narrow_to_interval(&Interval::new(0.174, 0.8));
/// assert!(narrowed.contains(&Value::number(0.2)));
/// assert!(!narrowed.contains(&Value::number(0.1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A continuous closed interval of real values.
    Interval(Interval),
    /// A finite, sorted set of numeric values (e.g. a discrete size menu).
    NumberSet(Vec<f64>),
    /// A finite set of textual values (e.g. abstraction levels).
    TextSet(Vec<String>),
    /// A boolean choice.
    Bool {
        /// Whether `false` remains a member.
        can_false: bool,
        /// Whether `true` remains a member.
        can_true: bool,
    },
}

impl Domain {
    /// Creates a continuous interval domain `[lo, hi]`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Domain::Interval(Interval::new(lo, hi))
    }

    /// Creates a finite numeric domain; the values are sorted and deduped.
    pub fn number_set(values: impl IntoIterator<Item = f64>) -> Self {
        let mut v: Vec<f64> = values.into_iter().filter(|x| !x.is_nan()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        v.dedup_by(|a, b| (*a - *b).abs() <= VALUE_EPS);
        Domain::NumberSet(v)
    }

    /// Creates a finite textual domain; duplicates are removed, order kept.
    pub fn text_set<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut v: Vec<String> = Vec::new();
        for s in values {
            let s = s.into();
            if !v.contains(&s) {
                v.push(s);
            }
        }
        Domain::TextSet(v)
    }

    /// Creates the full boolean domain `{false, true}`.
    pub fn boolean() -> Self {
        Domain::Bool {
            can_false: true,
            can_true: true,
        }
    }

    /// Creates the degenerate domain holding exactly `value`.
    pub fn singleton(value: &Value) -> Self {
        match value {
            Value::Number(x) => Domain::Interval(Interval::singleton(*x)),
            Value::Text(s) => Domain::TextSet(vec![s.clone()]),
            Value::Bool(b) => Domain::Bool {
                can_false: !*b,
                can_true: *b,
            },
        }
    }

    /// The canonical empty domain.
    pub fn empty() -> Self {
        Domain::Interval(Interval::EMPTY)
    }

    /// Whether no values remain.
    pub fn is_empty(&self) -> bool {
        match self {
            Domain::Interval(iv) => iv.is_empty(),
            Domain::NumberSet(v) => v.is_empty(),
            Domain::TextSet(v) => v.is_empty(),
            Domain::Bool {
                can_false,
                can_true,
            } => !can_false && !can_true,
        }
    }

    /// Whether exactly one value remains.
    pub fn is_singleton(&self) -> bool {
        match self {
            Domain::Interval(iv) => iv.is_singleton(),
            Domain::NumberSet(v) => v.len() == 1,
            Domain::TextSet(v) => v.len() == 1,
            Domain::Bool {
                can_false,
                can_true,
            } => can_false != can_true,
        }
    }

    /// Whether the domain holds numeric values (and thus participates in
    /// interval propagation).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Domain::Interval(_) | Domain::NumberSet(_))
    }

    /// Whether `value` is a member of the domain.
    pub fn contains(&self, value: &Value) -> bool {
        match (self, value) {
            (Domain::Interval(iv), Value::Number(x)) => iv.contains(*x),
            (Domain::NumberSet(v), Value::Number(x)) => {
                v.iter().any(|y| (y - x).abs() <= VALUE_EPS * (1.0 + x.abs()))
            }
            (Domain::TextSet(v), Value::Text(s)) => v.iter().any(|t| t == s),
            (
                Domain::Bool {
                    can_false,
                    can_true,
                },
                Value::Bool(b),
            ) => {
                if *b {
                    *can_true
                } else {
                    *can_false
                }
            }
            _ => false,
        }
    }

    /// The smallest interval containing every numeric member, or `None` for
    /// symbolic domains. Used to feed discrete numeric domains into the
    /// interval propagator.
    pub fn enclosing_interval(&self) -> Option<Interval> {
        match self {
            Domain::Interval(iv) => Some(*iv),
            Domain::NumberSet(v) => {
                if v.is_empty() {
                    Some(Interval::EMPTY)
                } else {
                    Some(Interval::new(v[0], *v.last().expect("non-empty")))
                }
            }
            _ => None,
        }
    }

    /// Narrows a numeric domain to the members inside `iv`; symbolic domains
    /// are returned unchanged (interval propagation cannot prune them).
    ///
    /// Finite numeric sets are filtered with a small relative tolerance
    /// (outward rounding): a member sitting exactly on a projected bound
    /// must survive the floating-point slop of the projection chain.
    pub fn narrow_to_interval(&self, iv: &Interval) -> Domain {
        match self {
            Domain::Interval(own) => Domain::Interval(own.intersect(iv)),
            Domain::NumberSet(v) => {
                let tolerant = iv.inflate(1e-9);
                Domain::NumberSet(v.iter().copied().filter(|x| tolerant.contains(*x)).collect())
            }
            other => other.clone(),
        }
    }

    /// A scalar "size" of the domain, comparable across properties after
    /// normalization by [`Domain::relative_size`]: interval width, set
    /// cardinality, or remaining boolean choices.
    pub fn measure(&self) -> f64 {
        match self {
            Domain::Interval(iv) => {
                if iv.is_empty() || iv.is_singleton() {
                    0.0
                } else {
                    iv.width()
                }
            }
            Domain::NumberSet(v) => v.len() as f64,
            Domain::TextSet(v) => v.len() as f64,
            Domain::Bool {
                can_false,
                can_true,
            } => (*can_false as u8 + *can_true as u8) as f64,
        }
    }

    /// Size of `self` relative to the initial range `initial`, in `[0, 1]`.
    ///
    /// This is the unit-independent quantity the *focus on the smallest
    /// feasible subspace* heuristic (paper §2.3.1) ranks properties by —
    /// the paper's own footnote notes raw sizes are unit-dependent.
    pub fn relative_size(&self, initial: &Domain) -> f64 {
        let init = initial.measure();
        if init <= 0.0 {
            if self.is_empty() {
                0.0
            } else {
                1.0
            }
        } else {
            (self.measure() / init).clamp(0.0, 1.0)
        }
    }

    /// Enumerates candidate values for discrete domains, in order.
    /// Continuous intervals return `None` (use interval endpoints instead).
    pub fn candidates(&self) -> Option<Vec<Value>> {
        match self {
            Domain::Interval(_) => None,
            Domain::NumberSet(v) => Some(v.iter().map(|x| Value::Number(*x)).collect()),
            Domain::TextSet(v) => Some(v.iter().map(|s| Value::Text(s.clone())).collect()),
            Domain::Bool {
                can_false,
                can_true,
            } => {
                let mut out = Vec::new();
                if *can_false {
                    out.push(Value::Bool(false));
                }
                if *can_true {
                    out.push(Value::Bool(true));
                }
                Some(out)
            }
        }
    }

    /// The lowest numeric member, if this is a non-empty numeric domain.
    pub fn min_number(&self) -> Option<f64> {
        match self {
            Domain::Interval(iv) if !iv.is_empty() => Some(iv.lo()),
            Domain::NumberSet(v) => v.first().copied(),
            _ => None,
        }
    }

    /// The highest numeric member, if this is a non-empty numeric domain.
    pub fn max_number(&self) -> Option<f64> {
        match self {
            Domain::Interval(iv) if !iv.is_empty() => Some(iv.hi()),
            Domain::NumberSet(v) => v.last().copied(),
            _ => None,
        }
    }

    /// Intersects two domains of the same flavour.
    ///
    /// Mismatched flavours produce the empty domain, except that numeric
    /// flavours intersect through their enclosing intervals.
    pub fn intersect(&self, other: &Domain) -> Domain {
        match (self, other) {
            (Domain::Interval(a), Domain::Interval(b)) => Domain::Interval(a.intersect(b)),
            (Domain::NumberSet(_), _) | (_, Domain::NumberSet(_))
                if self.is_numeric() && other.is_numeric() =>
            {
                // Keep the discrete side's structure.
                if let Domain::NumberSet(v) = self {
                    let iv = other.enclosing_interval().expect("numeric");
                    Domain::NumberSet(v.iter().copied().filter(|x| iv.contains(*x)).collect())
                } else if let Domain::NumberSet(v) = other {
                    let iv = self.enclosing_interval().expect("numeric");
                    Domain::NumberSet(v.iter().copied().filter(|x| iv.contains(*x)).collect())
                } else {
                    unreachable!("one side must be a NumberSet")
                }
            }
            (Domain::TextSet(a), Domain::TextSet(b)) => {
                Domain::TextSet(a.iter().filter(|s| b.contains(s)).cloned().collect())
            }
            (
                Domain::Bool {
                    can_false: f1,
                    can_true: t1,
                },
                Domain::Bool {
                    can_false: f2,
                    can_true: t2,
                },
            ) => Domain::Bool {
                can_false: *f1 && *f2,
                can_true: *t1 && *t2,
            },
            _ => Domain::empty(),
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Interval(iv) => {
                if iv.is_empty() {
                    write!(f, "{{}}")
                } else {
                    write!(f, "{{{:.6} {:.6}}}", iv.lo(), iv.hi())
                }
            }
            Domain::NumberSet(v) => {
                write!(f, "{{")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            Domain::TextSet(v) => write!(f, "{{{}}}", v.join(", ")),
            Domain::Bool {
                can_false,
                can_true,
            } => match (can_false, can_true) {
                (true, true) => write!(f, "{{false, true}}"),
                (true, false) => write!(f, "{{false}}"),
                (false, true) => write!(f, "{{true}}"),
                (false, false) => write!(f, "{{}}"),
            },
        }
    }
}

impl From<Interval> for Domain {
    fn from(iv: Interval) -> Self {
        Domain::Interval(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_domain_contains_and_measures() {
        let d = Domain::interval(0.0, 0.5);
        assert!(d.contains(&Value::number(0.17)));
        assert!(!d.contains(&Value::number(0.6)));
        assert!(!d.contains(&Value::text("0.17")));
        assert_eq!(d.measure(), 0.5);
    }

    #[test]
    fn number_set_is_sorted_and_deduped() {
        let d = Domain::number_set([3.0, 1.0, 2.0, 1.0 + 1e-12]);
        assert_eq!(d, Domain::NumberSet(vec![1.0, 2.0, 3.0]));
        assert!(d.contains(&Value::number(2.0)));
        assert_eq!(d.measure(), 3.0);
    }

    #[test]
    fn text_set_keeps_insertion_order_without_duplicates() {
        let d = Domain::text_set(["Transistor", "Geometry", "Transistor"]);
        assert_eq!(
            d.candidates().unwrap(),
            vec![Value::text("Transistor"), Value::text("Geometry")]
        );
    }

    #[test]
    fn boolean_domain_shrinks_by_intersection() {
        let d = Domain::boolean();
        let only_true = d.intersect(&Domain::singleton(&Value::Bool(true)));
        assert!(only_true.is_singleton());
        assert!(only_true.contains(&Value::Bool(true)));
        assert!(!only_true.contains(&Value::Bool(false)));
    }

    #[test]
    fn singleton_constructors_match_contains() {
        for v in [Value::number(1.5), Value::text("geom"), Value::Bool(false)] {
            let d = Domain::singleton(&v);
            assert!(d.is_singleton(), "{d:?}");
            assert!(d.contains(&v));
        }
    }

    #[test]
    fn empty_detection() {
        assert!(Domain::empty().is_empty());
        assert!(Domain::number_set(std::iter::empty::<f64>()).is_empty());
        assert!(Domain::interval(1.0, 0.0).is_empty());
        assert!(!Domain::boolean().is_empty());
    }

    #[test]
    fn enclosing_interval_for_numeric_domains() {
        assert_eq!(
            Domain::interval(1.0, 2.0).enclosing_interval(),
            Some(Interval::new(1.0, 2.0))
        );
        assert_eq!(
            Domain::number_set([5.0, 1.0, 3.0]).enclosing_interval(),
            Some(Interval::new(1.0, 5.0))
        );
        assert_eq!(Domain::boolean().enclosing_interval(), None);
    }

    #[test]
    fn narrow_to_interval_prunes_numeric_members() {
        let iv = Interval::new(1.5, 3.5);
        assert_eq!(
            Domain::interval(0.0, 10.0).narrow_to_interval(&iv),
            Domain::interval(1.5, 3.5)
        );
        assert_eq!(
            Domain::number_set([1.0, 2.0, 3.0, 4.0]).narrow_to_interval(&iv),
            Domain::NumberSet(vec![2.0, 3.0])
        );
        // Symbolic domains are untouched.
        let t = Domain::text_set(["a", "b"]);
        assert_eq!(t.narrow_to_interval(&iv), t);
    }

    #[test]
    fn relative_size_normalizes_to_unit_range() {
        let init = Domain::interval(0.0, 10.0);
        let narrowed = Domain::interval(2.0, 4.0);
        assert!((narrowed.relative_size(&init) - 0.2).abs() < 1e-12);
        assert_eq!(init.relative_size(&init), 1.0);
        assert_eq!(Domain::empty().relative_size(&init), 0.0);
    }

    #[test]
    fn relative_size_of_singleton_initial_is_degenerate() {
        let init = Domain::singleton(&Value::number(5.0));
        assert_eq!(init.relative_size(&init), 1.0);
        assert_eq!(Domain::empty().relative_size(&init), 0.0);
    }

    #[test]
    fn min_max_number() {
        assert_eq!(Domain::interval(1.0, 9.0).min_number(), Some(1.0));
        assert_eq!(Domain::interval(1.0, 9.0).max_number(), Some(9.0));
        assert_eq!(Domain::number_set([4.0, 2.0]).min_number(), Some(2.0));
        assert_eq!(Domain::text_set(["x"]).min_number(), None);
    }

    #[test]
    fn intersect_mixed_numeric_flavours_keeps_discrete_structure() {
        let set = Domain::number_set([1.0, 2.0, 3.0]);
        let iv = Domain::interval(1.5, 9.0);
        assert_eq!(set.intersect(&iv), Domain::NumberSet(vec![2.0, 3.0]));
        assert_eq!(iv.intersect(&set), Domain::NumberSet(vec![2.0, 3.0]));
    }

    #[test]
    fn intersect_mismatched_flavours_is_empty() {
        let t = Domain::text_set(["a"]);
        let n = Domain::interval(0.0, 1.0);
        assert!(t.intersect(&n).is_empty());
    }

    #[test]
    fn display_matches_paper_browser_style() {
        assert_eq!(
            Domain::interval(0.174255, 0.5).to_string(),
            "{0.174255 0.500000}"
        );
        assert_eq!(Domain::number_set([1.0, 2.0]).to_string(), "{1, 2}");
        assert_eq!(Domain::text_set(["Transistor", "Geometry"]).to_string(), "{Transistor, Geometry}");
    }

    #[test]
    fn candidates_enumerate_discrete_domains_only() {
        assert!(Domain::interval(0.0, 1.0).candidates().is_none());
        assert_eq!(
            Domain::boolean().candidates().unwrap(),
            vec![Value::Bool(false), Value::Bool(true)]
        );
    }
}
