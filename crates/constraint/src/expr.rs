//! Arithmetic expressions over design properties.
//!
//! Constraints in the paper are relations over properties, e.g. the
//! receiver power budget `P_f + P_s <= P_M`. This module provides the
//! expression trees those relations are built from, with three evaluation
//! modes used throughout the crate:
//!
//! * **point evaluation** ([`Expr::eval_point`]) — the verification-operator
//!   path (a "tool run" on bound values);
//! * **interval evaluation** ([`Expr::eval_interval`]) — the Design
//!   Constraint Manager's conservative status computation;
//! * **symbolic differentiation** ([`Expr::diff`]) — powers monotonicity
//!   inference for the direction-aware repair heuristic (paper §3.1.1).
//!
//! The propagation hot path does not interpret these trees directly
//! unless asked to: under the compiled engines
//! ([`crate::PropagationEngine`]) each tree is lowered once per run to a
//! flat postfix program ([`crate::CompiledConstraint`]) that replays the
//! interpreter's forward/backward HC4 passes allocation-free — see
//! `docs/PERFORMANCE.md` for the cost model.
//!
//! Expressions are built with [`var`]/[`cst`] plus standard operators:
//!
//! ```
//! use adpm_constraint::{expr::{var, cst}, PropertyId};
//! let pf = PropertyId::new(0);
//! let ps = PropertyId::new(1);
//! let budget = var(pf) + var(ps); // P_f + P_s
//! assert_eq!(budget.variables(), vec![pf, ps]);
//! ```

use crate::ids::PropertyId;
use crate::interval::Interval;
use std::fmt;

/// An arithmetic expression over design properties.
///
/// See the [module documentation](self) for usage.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Const(f64),
    /// A reference to a design property's value.
    Var(PropertyId),
    /// Negation `-e`.
    Neg(Box<Expr>),
    /// Absolute value `|e|`.
    Abs(Box<Expr>),
    /// Square root (undefined below zero).
    Sqrt(Box<Expr>),
    /// Exponential `e^x`.
    Exp(Box<Expr>),
    /// Natural logarithm (undefined at and below zero).
    Ln(Box<Expr>),
    /// Integer power `e^n`, `n >= 0`.
    Powi(Box<Expr>, i32),
    /// Sum of two subexpressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two subexpressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two subexpressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two subexpressions.
    Div(Box<Expr>, Box<Expr>),
    /// Pointwise minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Pointwise maximum.
    Max(Box<Expr>, Box<Expr>),
}

/// Creates a variable reference expression.
pub fn var(id: PropertyId) -> Expr {
    Expr::Var(id)
}

/// Creates a constant expression.
pub fn cst(x: f64) -> Expr {
    Expr::Const(x)
}

impl Expr {
    /// Square root of this expression.
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Box::new(self))
    }

    /// Absolute value of this expression.
    pub fn abs(self) -> Expr {
        Expr::Abs(Box::new(self))
    }

    /// Exponential of this expression.
    pub fn exp(self) -> Expr {
        Expr::Exp(Box::new(self))
    }

    /// Natural logarithm of this expression.
    pub fn ln(self) -> Expr {
        Expr::Ln(Box::new(self))
    }

    /// Integer power of this expression.
    ///
    /// # Panics
    ///
    /// Panics if `n` is negative; use `cst(1.0) / e.powi(n)` instead.
    pub fn powi(self, n: i32) -> Expr {
        assert!(n >= 0, "powi exponent must be non-negative");
        Expr::Powi(Box::new(self), n)
    }

    /// Pointwise minimum with another expression.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(other))
    }

    /// Pointwise maximum with another expression.
    pub fn max(self, other: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(other))
    }

    /// All distinct properties referenced, in ascending id order.
    pub fn variables(&self) -> Vec<PropertyId> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_variables(&self, out: &mut Vec<PropertyId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(id) => out.push(*id),
            Expr::Neg(e) | Expr::Abs(e) | Expr::Sqrt(e) | Expr::Exp(e) | Expr::Ln(e) => {
                e.collect_variables(out)
            }
            Expr::Powi(e, _) => e.collect_variables(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
        }
    }

    /// Whether the expression references `id`.
    pub fn references(&self, id: PropertyId) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(v) => *v == id,
            Expr::Neg(e) | Expr::Abs(e) | Expr::Sqrt(e) | Expr::Exp(e) | Expr::Ln(e) => {
                e.references(id)
            }
            Expr::Powi(e, _) => e.references(id),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.references(id) || b.references(id),
        }
    }

    /// Number of nodes in the expression tree (used by complexity caps).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Neg(e) | Expr::Abs(e) | Expr::Sqrt(e) | Expr::Exp(e) | Expr::Ln(e) => {
                1 + e.node_count()
            }
            Expr::Powi(e, _) => 1 + e.node_count(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// Evaluates the expression on concrete values.
    ///
    /// Undefined operations (e.g. `ln` of a negative) return NaN, matching
    /// `f64` semantics; callers treat NaN results as violated checks.
    pub fn eval_point<F: Fn(PropertyId) -> f64>(&self, lookup: &F) -> f64 {
        match self {
            Expr::Const(x) => *x,
            Expr::Var(id) => lookup(*id),
            Expr::Neg(e) => -e.eval_point(lookup),
            Expr::Abs(e) => e.eval_point(lookup).abs(),
            Expr::Sqrt(e) => e.eval_point(lookup).sqrt(),
            Expr::Exp(e) => e.eval_point(lookup).exp(),
            Expr::Ln(e) => e.eval_point(lookup).ln(),
            Expr::Powi(e, n) => e.eval_point(lookup).powi(*n),
            Expr::Add(a, b) => a.eval_point(lookup) + b.eval_point(lookup),
            Expr::Sub(a, b) => a.eval_point(lookup) - b.eval_point(lookup),
            Expr::Mul(a, b) => a.eval_point(lookup) * b.eval_point(lookup),
            Expr::Div(a, b) => a.eval_point(lookup) / b.eval_point(lookup),
            Expr::Min(a, b) => a.eval_point(lookup).min(b.eval_point(lookup)),
            Expr::Max(a, b) => a.eval_point(lookup).max(b.eval_point(lookup)),
        }
    }

    /// Evaluates the expression over property intervals, returning an
    /// interval guaranteed to contain every point result.
    pub fn eval_interval<F: Fn(PropertyId) -> Interval>(&self, lookup: &F) -> Interval {
        match self {
            Expr::Const(x) => Interval::singleton(*x),
            Expr::Var(id) => lookup(*id),
            Expr::Neg(e) => e.eval_interval(lookup).neg(),
            Expr::Abs(e) => e.eval_interval(lookup).abs(),
            Expr::Sqrt(e) => e.eval_interval(lookup).sqrt(),
            Expr::Exp(e) => e.eval_interval(lookup).exp(),
            Expr::Ln(e) => e.eval_interval(lookup).ln(),
            Expr::Powi(e, n) => e.eval_interval(lookup).powi(*n),
            Expr::Add(a, b) => a.eval_interval(lookup) + b.eval_interval(lookup),
            Expr::Sub(a, b) => a.eval_interval(lookup) - b.eval_interval(lookup),
            Expr::Mul(a, b) => a.eval_interval(lookup) * b.eval_interval(lookup),
            Expr::Div(a, b) => a.eval_interval(lookup) / b.eval_interval(lookup),
            Expr::Min(a, b) => a.eval_interval(lookup).min(&b.eval_interval(lookup)),
            Expr::Max(a, b) => a.eval_interval(lookup).max(&b.eval_interval(lookup)),
        }
    }

    /// Symbolic partial derivative with respect to `id`.
    ///
    /// `min`/`max`/`abs` are differentiated piecewise-conservatively: the
    /// result is only used to bound the derivative's *sign* over a box, so
    /// we return the hull-friendly `(a' + b')/2 ± ...` free form is avoided
    /// and instead kink operators differentiate as `0` when the sign is
    /// ambiguous (callers fall back to sampling in that case).
    pub fn diff(&self, id: PropertyId) -> Expr {
        match self {
            Expr::Const(_) => cst(0.0),
            Expr::Var(v) => {
                if *v == id {
                    cst(1.0)
                } else {
                    cst(0.0)
                }
            }
            Expr::Neg(e) => Expr::Neg(Box::new(e.diff(id))).simplified(),
            Expr::Abs(_) | Expr::Min(_, _) | Expr::Max(_, _) => {
                // Non-smooth; monotonicity inference falls back to sampling.
                cst(0.0)
            }
            Expr::Sqrt(e) => {
                // d/dx sqrt(u) = u' / (2 sqrt(u))
                let u = e.as_ref().clone();
                (e.diff(id) / (cst(2.0) * u.sqrt())).simplified()
            }
            Expr::Exp(e) => {
                let u = e.as_ref().clone();
                (e.diff(id) * u.exp()).simplified()
            }
            Expr::Ln(e) => {
                let u = e.as_ref().clone();
                (e.diff(id) / u).simplified()
            }
            Expr::Powi(e, n) => {
                if *n == 0 {
                    cst(0.0)
                } else {
                    let u = e.as_ref().clone();
                    (cst(*n as f64) * u.powi(n - 1) * e.diff(id)).simplified()
                }
            }
            Expr::Add(a, b) => (a.diff(id) + b.diff(id)).simplified(),
            Expr::Sub(a, b) => (a.diff(id) - b.diff(id)).simplified(),
            Expr::Mul(a, b) => {
                let (ac, bc) = (a.as_ref().clone(), b.as_ref().clone());
                (a.diff(id) * bc + ac * b.diff(id)).simplified()
            }
            Expr::Div(a, b) => {
                let (ac, bc) = (a.as_ref().clone(), b.as_ref().clone());
                ((a.diff(id) * bc.clone() - ac * b.diff(id)) / bc.powi(2)).simplified()
            }
        }
    }

    /// Whether the expression contains a non-smooth operator (`abs`, `min`,
    /// `max`), whose symbolic derivative this module does not produce.
    pub fn has_kink(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Abs(_) | Expr::Min(_, _) | Expr::Max(_, _) => true,
            Expr::Neg(e) | Expr::Sqrt(e) | Expr::Exp(e) | Expr::Ln(e) => e.has_kink(),
            Expr::Powi(e, _) => e.has_kink(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.has_kink() || b.has_kink()
            }
        }
    }

    /// Light constant folding; keeps derivative output readable and small.
    // Float literals in match patterns are a future-compat hazard, so the
    // equality guards stay despite clippy's preference.
    #[allow(clippy::redundant_guards)]
    pub fn simplified(self) -> Expr {
        match self {
            Expr::Neg(e) => match e.simplified() {
                Expr::Const(x) => cst(-x),
                Expr::Neg(inner) => *inner,
                other => Expr::Neg(Box::new(other)),
            },
            Expr::Add(a, b) => match (a.simplified(), b.simplified()) {
                (Expr::Const(x), Expr::Const(y)) => cst(x + y),
                (Expr::Const(x), other) | (other, Expr::Const(x)) if x == 0.0 => other,
                (x, y) => Expr::Add(Box::new(x), Box::new(y)),
            },
            Expr::Sub(a, b) => match (a.simplified(), b.simplified()) {
                (Expr::Const(x), Expr::Const(y)) => cst(x - y),
                (other, Expr::Const(x)) if x == 0.0 => other,
                (x, y) => Expr::Sub(Box::new(x), Box::new(y)),
            },
            Expr::Mul(a, b) => match (a.simplified(), b.simplified()) {
                (Expr::Const(x), Expr::Const(y)) => cst(x * y),
                (Expr::Const(c), _) | (_, Expr::Const(c)) if c == 0.0 => cst(0.0),
                (Expr::Const(c), other) | (other, Expr::Const(c)) if c == 1.0 => other,
                (x, y) => Expr::Mul(Box::new(x), Box::new(y)),
            },
            Expr::Div(a, b) => match (a.simplified(), b.simplified()) {
                (Expr::Const(x), Expr::Const(y)) if y != 0.0 => cst(x / y),
                (Expr::Const(x), _) if x == 0.0 => cst(0.0),
                (other, Expr::Const(x)) if x == 1.0 => other,
                (x, y) => Expr::Div(Box::new(x), Box::new(y)),
            },
            Expr::Powi(e, n) => match (e.simplified(), n) {
                (_, 0) => cst(1.0),
                (inner, 1) => inner,
                (Expr::Const(x), n) => cst(x.powi(n)),
                (inner, n) => Expr::Powi(Box::new(inner), n),
            },
            other => other,
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl From<f64> for Expr {
    fn from(x: f64) -> Expr {
        cst(x)
    }
}

impl From<PropertyId> for Expr {
    fn from(id: PropertyId) -> Expr {
        var(id)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(x) => write!(f, "{x}"),
            Expr::Var(id) => write!(f, "{id}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Abs(e) => write!(f, "abs({e})"),
            Expr::Sqrt(e) => write!(f, "sqrt({e})"),
            Expr::Exp(e) => write!(f, "exp({e})"),
            Expr::Ln(e) => write!(f, "ln({e})"),
            Expr::Powi(e, n) => write!(f, "({e})^{n}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PropertyId {
        PropertyId::new(i)
    }

    #[test]
    fn variables_are_sorted_and_deduped() {
        let e = var(p(3)) + var(p(1)) * var(p(3)) - cst(2.0);
        assert_eq!(e.variables(), vec![p(1), p(3)]);
        assert!(e.references(p(1)));
        assert!(!e.references(p(0)));
    }

    #[test]
    fn point_evaluation_matches_arithmetic() {
        let e = (var(p(0)) + var(p(1))) * cst(2.0) - var(p(0)).powi(2);
        let lookup = |id: PropertyId| if id == p(0) { 3.0 } else { 4.0 };
        assert_eq!(e.eval_point(&lookup), (3.0 + 4.0) * 2.0 - 9.0);
    }

    #[test]
    fn point_evaluation_unary_ops() {
        let lookup = |_: PropertyId| 4.0;
        assert_eq!(var(p(0)).sqrt().eval_point(&lookup), 2.0);
        assert_eq!((-var(p(0))).abs().eval_point(&lookup), 4.0);
        assert!((var(p(0)).ln().eval_point(&lookup) - 4.0f64.ln()).abs() < 1e-12);
        assert!((var(p(0)).exp().eval_point(&lookup) - 4.0f64.exp()).abs() < 1e-12);
        assert_eq!(var(p(0)).min(cst(1.0)).eval_point(&lookup), 1.0);
        assert_eq!(var(p(0)).max(cst(9.0)).eval_point(&lookup), 9.0);
    }

    #[test]
    fn interval_evaluation_encloses_point_results() {
        let e = var(p(0)) * var(p(1)) - var(p(0)).powi(2) / cst(2.0);
        let dom = |id: PropertyId| {
            if id == p(0) {
                Interval::new(-1.0, 2.0)
            } else {
                Interval::new(0.5, 3.0)
            }
        };
        let enclosure = e.eval_interval(&dom);
        for x in Interval::new(-1.0, 2.0).sample(9) {
            for y in Interval::new(0.5, 3.0).sample(9) {
                let v = e.eval_point(&|id| if id == p(0) { x } else { y });
                assert!(
                    enclosure.contains(v),
                    "{v} not in {enclosure} for x={x}, y={y}"
                );
            }
        }
    }

    #[test]
    fn derivative_of_polynomial() {
        // d/dx (x^2 + 3x) = 2x + 3
        let e = var(p(0)).powi(2) + cst(3.0) * var(p(0));
        let d = e.diff(p(0));
        for x in [-2.0, 0.0, 1.5, 10.0] {
            let got = d.eval_point(&|_| x);
            assert!((got - (2.0 * x + 3.0)).abs() < 1e-9, "x={x}, got={got}");
        }
    }

    #[test]
    fn derivative_of_quotient_and_transcendentals() {
        // d/dx (ln(x) / x) = (1 - ln x) / x^2
        let e = var(p(0)).ln() / var(p(0));
        let d = e.diff(p(0));
        for x in [0.5f64, 1.0, 2.0, 5.0] {
            let expect = (1.0 - x.ln()) / (x * x);
            let got = d.eval_point(&|_| x);
            assert!((got - expect).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn derivative_wrt_other_variable_is_zero() {
        let e = var(p(0)).powi(3) * cst(5.0);
        assert_eq!(e.diff(p(1)), cst(0.0));
    }

    #[test]
    fn derivative_of_sqrt_and_exp_chain() {
        // d/dx sqrt(2x) = 1/sqrt(2x)
        let e = (cst(2.0) * var(p(0))).sqrt();
        let d = e.diff(p(0));
        for x in [0.5f64, 2.0, 8.0] {
            let expect = 1.0 / (2.0 * x).sqrt();
            let got = d.eval_point(&|_| x);
            assert!((got - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn kink_detection() {
        assert!(var(p(0)).abs().has_kink());
        assert!(var(p(0)).min(cst(1.0)).has_kink());
        assert!(!(var(p(0)) + cst(1.0)).has_kink());
        assert!((var(p(0)).abs() + cst(1.0)).has_kink());
    }

    #[test]
    fn simplify_folds_constants_and_identities() {
        assert_eq!((cst(2.0) + cst(3.0)).simplified(), cst(5.0));
        assert_eq!((var(p(0)) + cst(0.0)).simplified(), var(p(0)));
        assert_eq!((cst(0.0) * var(p(0))).simplified(), cst(0.0));
        assert_eq!((cst(1.0) * var(p(0))).simplified(), var(p(0)));
        assert_eq!((var(p(0)) - cst(0.0)).simplified(), var(p(0)));
        assert_eq!(var(p(0)).powi(1).simplified(), var(p(0)));
        assert_eq!(var(p(0)).powi(0).simplified(), cst(1.0));
        assert_eq!((-(-var(p(0)))).simplified(), var(p(0)));
    }

    #[test]
    fn node_count_counts_all_nodes() {
        assert_eq!(cst(1.0).node_count(), 1);
        assert_eq!((var(p(0)) + cst(1.0)).node_count(), 3);
        assert_eq!(var(p(0)).sqrt().node_count(), 2);
    }

    #[test]
    fn display_is_parenthesized() {
        let e = (var(p(0)) + cst(1.0)) * var(p(1));
        assert_eq!(e.to_string(), "((p0 + 1) * p1)");
    }

    #[test]
    fn conversions_from_f64_and_id() {
        assert_eq!(Expr::from(2.5), cst(2.5));
        assert_eq!(Expr::from(p(7)), var(p(7)));
    }
}
