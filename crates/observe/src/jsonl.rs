//! The JSONL trace sink and its reader.

use crate::json::{parse_object, JsonValue, TraceParseError};
use crate::sink::{InMemorySink, MetricsSink};
use crate::trace::{Counter, TraceEvent};
use crate::histogram::SpanKind;
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A [`MetricsSink`] that serializes every event as one JSON object per
/// line, for offline analysis and replay auditing.
///
/// Counters are aggregated in memory alongside the stream;
/// [`finish`](JsonlSink::finish) appends them as a final
/// `{"t":"counters",...}` line and flushes. An I/O error during
/// [`record`](MetricsSink::record) never panics the instrumented run; the
/// *first* such error is retained and surfaced by the next
/// [`finish`](JsonlSink::finish) call (or inspected early via
/// [`take_error`](JsonlSink::take_error)). Dropping the sink finishes it
/// implicitly but discards any error — call `finish` when you care.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    counters: InMemorySink,
    finished: AtomicBool,
    error: Mutex<Option<std::io::Error>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("counters", &self.counters)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer (buffered internally).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            counters: InMemorySink::new(),
            finished: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Creates (truncating) `path` and streams the trace to it.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(file)))
    }

    /// A point-in-time copy of the aggregated counters.
    pub fn snapshot(&self) -> crate::sink::CounterSnapshot {
        self.counters.snapshot()
    }

    /// Removes and returns the first deferred write error, if any —
    /// [`record`](MetricsSink::record) must never panic or error into the
    /// instrumented run, so mid-run I/O failures park here instead.
    pub fn take_error(&self) -> Option<std::io::Error> {
        lock_recovered(&self.error).take()
    }

    fn store_error(&self, error: std::io::Error) {
        let mut slot = lock_recovered(&self.error);
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, BufWriter<Box<dyn Write + Send>>> {
        // Poison recovery: a panic on another instrumented thread must not
        // cascade into losing the rest of the trace. The writer state is a
        // byte stream — at worst the panicking thread left a partial line.
        lock_recovered(&self.writer)
    }

    /// Writes the final `{"t":"counters",...}` line and flushes. Safe to
    /// call more than once; only the first call writes (but any call
    /// surfaces a still-pending deferred error).
    ///
    /// # Errors
    ///
    /// The first deferred [`record`](MetricsSink::record) error, or any
    /// [`std::io::Error`] from writing the counters line and flushing.
    pub fn finish(&self) -> std::io::Result<()> {
        if !self.finished.swap(true, Ordering::SeqCst) {
            let mut writer = self.lock_writer();
            let result = writeln!(writer, "{}", self.counters.snapshot().to_json())
                .and_then(|()| writer.flush());
            drop(writer);
            if let Err(error) = result {
                self.store_error(error);
            }
        }
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

impl MetricsSink for JsonlSink {
    fn incr(&self, counter: Counter, by: u64) {
        self.counters.incr(counter, by);
    }

    fn record(&self, event: &TraceEvent<'_>) {
        let mut line = String::with_capacity(96);
        event.write_json(&mut line);
        line.push('\n');
        let result = self.lock_writer().write_all(line.as_bytes());
        // An I/O error mid-run (disk full, closed pipe) must not panic the
        // simulation; the trace is best-effort, so park the first error for
        // `finish`/`take_error` to surface.
        if let Err(error) = result {
            self.store_error(error);
        }
    }

    fn time(&self, kind: SpanKind, dur_us: u64) {
        self.counters.time(kind, dur_us);
    }

    /// Degradation-point durability: run [`finish`](JsonlSink::finish) so
    /// the counters line and every buffered event reach the writer now,
    /// while the process still can. Any I/O error stays deferred for
    /// [`take_error`](JsonlSink::take_error), as the sink contract demands.
    fn flush(&self) {
        if let Err(error) = self.finish() {
            // finish() takes the deferred error out; park it again so a
            // later take_error/finish caller still sees it.
            self.store_error(error);
        }
    }
}

/// One parsed line of a JSONL trace: ordered `(key, value)` pairs plus the
/// mandatory `"t"` tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLine {
    tag: String,
    fields: Vec<(String, JsonValue)>,
}

impl TraceLine {
    /// The line's `"t"` type tag (`"op"`, `"wave"`, `"counters"`, ...).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A field as `u64`, if present and a non-negative integer.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JsonValue::as_u64)
    }

    /// A field as `bool`, if present and boolean.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(JsonValue::as_bool)
    }

    /// A field as `&str`, if present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// All fields except the tag, in serialization order.
    pub fn fields(&self) -> &[(String, JsonValue)] {
        &self.fields
    }
}

/// Parses a JSONL trace (the full text, one object per non-empty line).
///
/// Every line must be a flat JSON object whose first field is the string
/// tag `"t"` — anything else is an error carrying the 1-based line number.
///
/// # Errors
///
/// Returns a [`TraceParseError`] for the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceLine>, TraceParseError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut fields = parse_object(raw, number)?;
        let tag = match fields.first() {
            Some((key, JsonValue::Str(tag))) if key == "t" => tag.clone(),
            _ => {
                return Err(TraceParseError {
                    line: number,
                    message: "first field must be the string tag \"t\"".into(),
                })
            }
        };
        fields.remove(0);
        lines.push(TraceLine { tag, fields });
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Write handle into a shared buffer, so tests can read back what the
    /// sink wrote after the sink is gone.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_round_trip_with_counters_line() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.incr(Counter::Evaluations, 7);
        sink.record(&TraceEvent::PropagationDone {
            kind: "full",
            seeded: 4,
            waves: 2,
            evaluations: 7,
            narrowed: 1,
            conflicts: 0,
            fixpoint: true,
            dur_us: 40,
        });
        sink.record(&TraceEvent::Tick {
            tick: 0,
            designer: 3,
            outcome: "executed",
            dur_us: 55,
        });
        sink.finish().expect("finish");
        drop(sink);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
        let lines = parse_trace(&text).expect("valid trace");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].tag(), "propagation");
        assert_eq!(lines[0].u64_field("waves"), Some(2));
        assert_eq!(lines[0].bool_field("fixpoint"), Some(true));
        assert_eq!(lines[0].u64_field("dur_us"), Some(40));
        assert_eq!(lines[1].tag(), "tick");
        assert_eq!(lines[1].str_field("outcome"), Some("executed"));
        assert_eq!(lines[1].u64_field("dur_us"), Some(55));
        assert_eq!(lines[2].tag(), "counters");
        assert_eq!(lines[2].u64_field("evaluations"), Some(7));
    }

    /// A writer that fails every write after the first `ok_writes`.
    struct FailingWriter {
        ok_writes: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn record_errors_are_deferred_and_surfaced_by_finish() {
        let sink = JsonlSink::new(Box::new(FailingWriter { ok_writes: 0 }));
        // record never panics or errors into the run...
        sink.record(&TraceEvent::Tick {
            tick: 0,
            designer: 0,
            outcome: "executed",
            dur_us: 1,
        });
        sink.record(&TraceEvent::Tick {
            tick: 1,
            designer: 0,
            outcome: "executed",
            dur_us: 1,
        });
        // ...BufWriter buffers small lines, so force the failure out.
        let err = sink.finish().expect_err("failure must surface");
        assert_eq!(err.to_string(), "disk full");
        // The error was taken by the failed finish; later calls are clean.
        assert!(sink.finish().is_ok());
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn take_error_exposes_the_first_deferred_error() {
        // Buffer capacity 1 byte would still buffer; use a writer that
        // fails immediately and bypass buffering via finish-sized writes.
        let sink = JsonlSink::new(Box::new(FailingWriter { ok_writes: 0 }));
        let long_line = "x".repeat(16 * 1024);
        sink.record(&TraceEvent::Tick {
            tick: 0,
            designer: 0,
            outcome: &long_line,
            dur_us: 1,
        });
        let err = sink.take_error().expect("oversized write fails through");
        assert_eq!(err.to_string(), "disk full");
        // Only the FIRST error is retained; a finish after take_error hits
        // its own write failure and reports that instead.
        assert!(sink.finish().is_err());
    }

    #[test]
    fn finish_is_idempotent() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.finish().expect("first finish");
        sink.finish().expect("second finish");
        drop(sink);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
        assert_eq!(text.lines().count(), 1, "{text}");
    }

    #[test]
    fn flush_finishes_through_the_sink_trait() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.incr(Counter::Operations, 2);
        // Producers hold the sink as &dyn MetricsSink at degradation
        // points; flush must write the counters line through that view.
        (&sink as &dyn MetricsSink).flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8");
        let lines = parse_trace(&text).expect("valid trace");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tag(), "counters");
        assert_eq!(lines[0].u64_field("operations"), Some(2));
        // flush keeps the deferred-error contract: none here.
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn flush_keeps_the_deferred_error_for_take_error() {
        let sink = JsonlSink::new(Box::new(FailingWriter { ok_writes: 0 }));
        (&sink as &dyn MetricsSink).flush();
        let err = sink.take_error().expect("flush failure must be parked");
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn parse_trace_requires_leading_tag() {
        assert!(parse_trace("{\"t\":\"op\",\"seq\":1}\n").is_ok());
        assert!(parse_trace("\n\n{\"t\":\"op\"}\n").is_ok());
        let err = parse_trace("{\"seq\":1,\"t\":\"op\"}").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_trace("{\"t\":\"op\"}\nnot json").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
