//! Log-bucketed duration histograms and the timed-span taxonomy.
//!
//! The histogram follows the HDR-histogram idea in its cheapest form: one
//! atomic bucket per power of two, so `record` is a couple of atomic adds
//! and quantile queries resolve to a bucket upper bound. That trades ≤2×
//! relative error on percentiles for a lock-free, allocation-free recorder
//! that is safe to share across threads — the same contract as the counter
//! array in [`InMemorySink`](crate::InMemorySink).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of timed spans the instrumented hot paths report, densely
/// indexable like [`Counter`](crate::Counter).
///
/// The spans nest: a `Tick` contains one `Operation`, which contains at
/// most one `Propagation` (λ = T) and one `Fanout`; a `Propagation`
/// contains its `Wave`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One simulation engine tick.
    Tick,
    /// One DPM design operation.
    Operation,
    /// One propagation run (worklist to fixpoint).
    Propagation,
    /// One BFS level of the propagation worklist.
    Wave,
    /// One Notification Manager fanout after an operation.
    Fanout,
    /// One collaboration session command (submit/subscribe/snapshot/...).
    Session,
    /// One notification-router fanout into subscriber inboxes.
    Notify,
    /// One journal recovery (read + replay) on session restart.
    Recover,
    /// One resilient-client reconnect (first failure to restored link).
    Reconnect,
    /// One lowering of a constraint network to flat interval programs.
    Compile,
    /// One connected-component worker inside a parallel propagation run.
    ParWave,
    /// One complete conflict negotiation (MCS reduction through the final
    /// accepted/abandoned verdict).
    Negotiate,
}

impl SpanKind {
    /// Every span kind, in index order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Tick,
        SpanKind::Operation,
        SpanKind::Propagation,
        SpanKind::Wave,
        SpanKind::Fanout,
        SpanKind::Session,
        SpanKind::Notify,
        SpanKind::Recover,
        SpanKind::Reconnect,
        SpanKind::Compile,
        SpanKind::ParWave,
        SpanKind::Negotiate,
    ];

    /// Number of span kinds (the size of a dense histogram array).
    pub const COUNT: usize = SpanKind::ALL.len();

    /// Dense index of this span kind in `0..SpanKind::COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable name, matching the `"t"` tag of the trace line that carries
    /// this span's `dur_us` field.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Tick => "tick",
            SpanKind::Operation => "op",
            SpanKind::Propagation => "propagation",
            SpanKind::Wave => "wave",
            SpanKind::Fanout => "fanout",
            SpanKind::Session => "session",
            SpanKind::Notify => "notify",
            SpanKind::Recover => "recover",
            SpanKind::Reconnect => "reconnect",
            SpanKind::Compile => "compile",
            SpanKind::ParWave => "par_wave",
            SpanKind::Negotiate => "negotiate",
        }
    }
}

/// Number of power-of-two buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`, up to bucket 64 for values
/// with the top bit set.
const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of `u64` samples (typically span
/// durations in µs).
///
/// `record` is wait-free (three relaxed atomic RMWs); `p50`/`p90`/`p99`
/// report the upper bound of the bucket where the cumulative count crosses
/// the quantile — exact `count`, `sum`, `max` and ≤2× relative error on
/// percentiles. Percentiles are pure bucket bounds: two histograms with
/// the same per-bucket occupancy report identical quantiles even when
/// their exact samples differ, which is what keeps `adpm analyze --vs`
/// timing comparisons deterministic across engines.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i` — the value a quantile query
    /// landing in that bucket reports.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Adds one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`): the upper bound of the
    /// bucket where the cumulative sample count reaches `p`% of the total.
    /// Returns 0 when empty.
    ///
    /// The answer is always a bucket bound (0, `2^i - 1`, or `u64::MAX`),
    /// never the noisy observed maximum, so quantiles depend only on bucket
    /// occupancy — deterministic across runs whose samples land in the same
    /// buckets.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Histogram::bucket_upper(i);
            }
        }
        Histogram::bucket_upper(Histogram::bucket_of(self.max()))
    }

    /// Median (see [`percentile`](Histogram::percentile)).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds every sample of `other` into `self` at bucket granularity:
    /// per-bucket counts, `count`, and `sum` add; `max` takes the larger.
    ///
    /// Because percentiles are pure bucket bounds, merging N per-shard
    /// histograms and querying the merge is *exactly* equivalent to having
    /// recorded every sample into one histogram — unlike averaging the
    /// shards' percentile answers, which has no such guarantee.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={} p50={} p90={} p99={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_kind_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(names.insert(kind.name()));
        }
        assert_eq!(names.len(), SpanKind::COUNT);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 21);
    }

    #[test]
    fn percentiles_land_within_their_log_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50's true value is 500; a log2 bucket answer must be in
        // [500, 1023] (the upper bound of 500's bucket).
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        // p99's true value is 990, which lands in the [512, 1023] bucket;
        // the reported bound is that bucket's upper edge, not the max.
        let p99 = h.p99();
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(100.0), 1023);
    }

    #[test]
    fn percentiles_depend_only_on_bucket_occupancy() {
        // Same buckets, different exact samples (and maxima): quantiles
        // must agree — the determinism contract `adpm analyze --vs`
        // relies on when comparing interp vs compiled timing columns.
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [3, 70, 130] {
            a.record(v);
        }
        for v in [2, 100, 255] {
            b.record(v);
        }
        assert_ne!(a.max(), b.max());
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), b.percentile(p), "p{p}");
        }
    }

    #[test]
    fn zero_and_max_values_have_homes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn reset_empties_the_histogram() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn concurrent_recording_counts_every_sample() {
        const THREADS: usize = 8;
        const SAMPLES: u64 = 5_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for s in 0..SAMPLES {
                        h.record(s % (i as u64 + 2));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
        assert_eq!(h.count(), THREADS as u64 * SAMPLES);
    }

    #[test]
    fn merge_is_equivalent_to_recording_into_one_histogram() {
        // Three "shards" with deliberately skewed distributions, so that
        // averaging the shards' percentiles would give a wrong answer.
        let shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        let reference = Histogram::new();
        let mut rng_state = 0x2545_F491_4F6C_DD1Du64;
        for (i, shard) in shards.iter().enumerate() {
            for _ in 0..200 {
                // xorshift: deterministic, spread across buckets.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let v = (rng_state % 10_000) << (i * 4);
                shard.record(v);
                reference.record(v);
            }
        }
        let merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.max(), reference.max());
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(p), reference.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_of_empty_histograms_is_a_no_op() {
        let h = Histogram::new();
        h.record(7);
        h.merge(&Histogram::new());
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn display_is_one_line_of_stats() {
        let h = Histogram::new();
        h.record(8);
        let line = h.to_string();
        assert!(line.contains("count=1"));
        assert!(line.contains("max=8"));
    }
}
