//! Offline trace analysis: hot-spot attribution, timing rollups, λ=T vs
//! λ=F comparison, and trace-to-trace regression diffs.
//!
//! The input is a parsed JSONL trace ([`parse_trace`](crate::parse_trace));
//! the output is an [`AnalysisReport`] that answers the questions the raw
//! stream cannot: *which constraint burned the evaluations, which property
//! caused the narrowing and the spins, which designer triggered the
//! notifications, and where the wall-clock time went*. Reports render as
//! plain-text tables ([`AnalysisReport::render`]) or as flat JSONL
//! ([`AnalysisReport::to_jsonl`]) that round-trips through the same parser
//! as the traces themselves.
//!
//! [`diff_traces`] turns two reports into a regression gate: per-statistic
//! deltas over the paper's four headline statistics (violations,
//! evaluations, operations, spins) plus the propagation internals, with
//! configurable absolute/relative noise thresholds.

use crate::histogram::Histogram;
use crate::json::escape_into;
use crate::jsonl::TraceLine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The statistics [`diff_traces`] compares, in display order: the paper's
/// four headline statistics first, then the propagation-cost internals.
pub const DIFF_STATISTICS: [&str; 9] = [
    "operations",
    "evaluations",
    "violations",
    "spins",
    "propagations",
    "waves",
    "narrowings",
    "conflicts",
    "notifications",
];

/// Per-constraint attribution over one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintHotSpot {
    /// Constraint name.
    pub name: String,
    /// Evaluations charged to the constraint (sum of its `cprof` lines).
    pub evaluations: u64,
    /// Propagation runs that found the constraint unsatisfiable.
    pub conflicts: u64,
    /// Operations that newly violated the constraint (`violation` lines).
    pub violations: u64,
}

/// Per-property attribution over one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyHotSpot {
    /// Property name, `object.property`.
    pub name: String,
    /// Narrowing events charged to the property (sum of its `pprof` lines).
    pub narrowings: u64,
    /// Operations that targeted the property (assign/unbind).
    pub assigns: u64,
    /// Spin operations that targeted the property.
    pub spins: u64,
}

/// Per-designer profile over one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignerProfile {
    /// Designer index.
    pub designer: u64,
    /// Operations the designer executed.
    pub operations: u64,
    /// Constraint evaluations those operations cost.
    pub evaluations: u64,
    /// Spins among those operations.
    pub spins: u64,
    /// Notification events the designer's operations triggered (fanout
    /// `events` joined to the operation's designer — the trace does not
    /// identify recipients).
    pub notifications: u64,
}

/// Propagation-run shape statistics over one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropagationStats {
    /// Completed propagation runs (`propagation` lines).
    pub runs: u64,
    /// Runs that took the full path.
    pub full: u64,
    /// Runs that took the incremental path.
    pub incremental: u64,
    /// Runs that reached fixpoint.
    pub fixpoints: u64,
    /// Deepest run, in waves.
    pub max_waves: u64,
    /// Violations whose constraint spans design objects (`cross` on
    /// `violation` lines).
    pub cross_violations: u64,
}

/// Timing rollup of one span kind, built from the `dur_us` fields of its
/// trace lines via a log-bucketed [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTiming {
    /// Span name = the trace tag carrying the durations (`tick`, `op`,
    /// `propagation`, `wave`, `fanout`), in nesting order.
    pub span: String,
    /// Spans observed.
    pub count: u64,
    /// Exact sum of durations, µs.
    pub total_us: u64,
    /// Mean duration, µs (rounded down).
    pub mean_us: u64,
    /// Median duration, µs (log-bucket upper bound).
    pub p50_us: u64,
    /// 90th-percentile duration, µs.
    pub p90_us: u64,
    /// 99th-percentile duration, µs.
    pub p99_us: u64,
    /// Exact maximum duration, µs.
    pub max_us: u64,
}

/// Everything [`analyze_trace`] can extract from one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Management mode from the `run_start` line (empty if absent).
    pub mode: String,
    /// Seed from the `run_start` line.
    pub seed: Option<u64>,
    /// Whether the run completed (from the `summary` line).
    pub completed: Option<bool>,
    /// Aggregate totals by counter name. Sourced from the trailing
    /// `counters` line when present, otherwise reconstructed from the
    /// event stream (best effort).
    pub totals: BTreeMap<String, u64>,
    /// Constraints by descending evaluation cost.
    pub constraints: Vec<ConstraintHotSpot>,
    /// Properties by descending narrowing count.
    pub properties: Vec<PropertyHotSpot>,
    /// Designers by index.
    pub designers: Vec<DesignerProfile>,
    /// Propagation-run shape.
    pub propagation: PropagationStats,
    /// Per-span-kind timing rollups, in nesting order (tick ⊃ op ⊃
    /// propagation ⊃ wave; fanout beside propagation). Only spans that
    /// occur in the trace appear.
    pub timings: Vec<SpanTiming>,
}

impl AnalysisReport {
    /// A total by counter name (0 when absent).
    pub fn total(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }
}

/// Span tags in nesting order for the timing rollup.
const SPAN_TAGS: [&str; 10] = [
    "tick",
    "session",
    "op",
    "negotiate",
    "propagation",
    "compile",
    "par_wave",
    "wave",
    "fanout",
    "notify",
];

/// Analyzes one parsed trace into attribution tables, propagation shape,
/// and timing rollups. Works on any schema-conformant trace; sections whose
/// events are absent (e.g. `cprof` lines from a pre-profiling writer) come
/// out empty rather than failing.
pub fn analyze_trace(lines: &[TraceLine]) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let mut constraints: BTreeMap<String, ConstraintHotSpot> = BTreeMap::new();
    let mut properties: BTreeMap<String, PropertyHotSpot> = BTreeMap::new();
    let mut designers: BTreeMap<u64, DesignerProfile> = BTreeMap::new();
    let mut op_designer: BTreeMap<u64, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, Histogram> = BTreeMap::new();
    let mut derived: BTreeMap<String, u64> = BTreeMap::new();
    let mut counters_seen = false;

    fn add(map: &mut BTreeMap<String, u64>, key: &str, by: u64) {
        *map.entry(key.to_string()).or_insert(0) += by;
    }

    for line in lines {
        if let Some(tag) = SPAN_TAGS.iter().find(|t| **t == line.tag()) {
            if let Some(dur) = line.u64_field("dur_us") {
                histograms.entry(tag).or_default().record(dur);
            }
        }
        match line.tag() {
            "run_start" => {
                report.mode = line.str_field("mode").unwrap_or("").to_string();
                report.seed = line.u64_field("seed");
            }
            "wave" => {
                add(&mut derived, "waves", 1);
                add(&mut derived, "narrowings", line.u64_field("narrowed").unwrap_or(0));
            }
            "propagation" => {
                report.propagation.runs += 1;
                match line.str_field("kind") {
                    Some("incremental") => report.propagation.incremental += 1,
                    _ => report.propagation.full += 1,
                }
                if line.bool_field("fixpoint") == Some(true) {
                    report.propagation.fixpoints += 1;
                }
                let waves = line.u64_field("waves").unwrap_or(0);
                report.propagation.max_waves = report.propagation.max_waves.max(waves);
                add(&mut derived, "propagations", 1);
                add(&mut derived, "conflicts", line.u64_field("conflicts").unwrap_or(0));
            }
            "cprof" => {
                let name = line.str_field("name").unwrap_or("");
                let entry = constraints
                    .entry(name.to_string())
                    .or_insert_with(|| ConstraintHotSpot {
                        name: name.to_string(),
                        evaluations: 0,
                        conflicts: 0,
                        violations: 0,
                    });
                entry.evaluations += line.u64_field("evaluations").unwrap_or(0);
                entry.conflicts += u64::from(line.bool_field("conflict") == Some(true));
            }
            "pprof" => {
                let name = line.str_field("name").unwrap_or("");
                let entry = properties
                    .entry(name.to_string())
                    .or_insert_with(|| PropertyHotSpot {
                        name: name.to_string(),
                        narrowings: 0,
                        assigns: 0,
                        spins: 0,
                    });
                entry.narrowings += line.u64_field("narrowings").unwrap_or(0);
            }
            "violation" => {
                let name = line.str_field("constraint").unwrap_or("");
                let entry = constraints
                    .entry(name.to_string())
                    .or_insert_with(|| ConstraintHotSpot {
                        name: name.to_string(),
                        evaluations: 0,
                        conflicts: 0,
                        violations: 0,
                    });
                entry.violations += 1;
                report.propagation.cross_violations +=
                    u64::from(line.bool_field("cross") == Some(true));
            }
            "op" => {
                let designer = line.u64_field("designer").unwrap_or(u64::MAX);
                let evaluations = line.u64_field("evaluations").unwrap_or(0);
                let spin = line.bool_field("spin") == Some(true);
                if let Some(seq) = line.u64_field("seq") {
                    op_designer.insert(seq, designer);
                }
                let entry = designers
                    .entry(designer)
                    .or_insert_with(|| DesignerProfile {
                        designer,
                        operations: 0,
                        evaluations: 0,
                        spins: 0,
                        notifications: 0,
                    });
                entry.operations += 1;
                entry.evaluations += evaluations;
                entry.spins += u64::from(spin);
                if let Some(target) = line.str_field("target").filter(|t| !t.is_empty()) {
                    let entry = properties
                        .entry(target.to_string())
                        .or_insert_with(|| PropertyHotSpot {
                            name: target.to_string(),
                            narrowings: 0,
                            assigns: 0,
                            spins: 0,
                        });
                    entry.assigns += 1;
                    entry.spins += u64::from(spin);
                }
                add(&mut derived, "operations", 1);
                add(&mut derived, "evaluations", evaluations);
                add(&mut derived, "violations", line.u64_field("new_violations").unwrap_or(0));
                add(&mut derived, "spins", u64::from(spin));
            }
            "fanout" => {
                let events = line.u64_field("events").unwrap_or(0);
                if let Some(designer) =
                    line.u64_field("seq").and_then(|seq| op_designer.get(&seq))
                {
                    if let Some(profile) = designers.get_mut(designer) {
                        profile.notifications += events;
                    }
                }
                add(&mut derived, "notifications", events);
            }
            "negotiate" => {
                add(&mut derived, "negotiation_rounds", line.u64_field("rounds").unwrap_or(0));
                add(&mut derived, "proposals_sent", line.u64_field("proposals").unwrap_or(0));
                match line.str_field("outcome") {
                    Some("resolved") => add(&mut derived, "conflicts_resolved", 1),
                    Some("abandoned") => add(&mut derived, "conflicts_abandoned", 1),
                    _ => {}
                }
            }
            "summary" => {
                report.completed = line.bool_field("completed");
                for key in ["operations", "evaluations", "spins", "violations"] {
                    if let Some(value) = line.u64_field(key) {
                        derived.insert(key.to_string(), value);
                    }
                }
            }
            "counters" => {
                counters_seen = true;
                for (key, value) in line.fields() {
                    if let Some(value) = value.as_u64() {
                        report.totals.insert(key.clone(), value);
                    }
                }
            }
            _ => {}
        }
    }

    if !counters_seen {
        report.totals = derived;
    }
    report.constraints = constraints.into_values().collect();
    report
        .constraints
        .sort_by(|a, b| b.evaluations.cmp(&a.evaluations).then(a.name.cmp(&b.name)));
    report.properties = properties.into_values().collect();
    report
        .properties
        .sort_by(|a, b| b.narrowings.cmp(&a.narrowings).then(a.name.cmp(&b.name)));
    report.designers = designers.into_values().collect();
    report.timings = SPAN_TAGS
        .iter()
        .filter_map(|tag| {
            let h = histograms.get(tag)?;
            Some(SpanTiming {
                span: (*tag).to_string(),
                count: h.count(),
                total_us: h.sum(),
                mean_us: h.mean(),
                p50_us: h.p50(),
                p90_us: h.p90(),
                p99_us: h.p99(),
                max_us: h.max(),
            })
        })
        .collect();
    report
}

impl AnalysisReport {
    /// Renders the report as plain-text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mode = if self.mode.is_empty() { "?" } else { &self.mode };
        write!(out, "trace analysis (mode {mode}").unwrap();
        if let Some(seed) = self.seed {
            write!(out, ", seed {seed}").unwrap();
        }
        if let Some(completed) = self.completed {
            write!(out, ", completed {completed}").unwrap();
        }
        out.push_str(")\n\ntotals:\n");
        for name in DIFF_STATISTICS {
            writeln!(out, "  {name:<16} {:>10}", self.total(name)).unwrap();
        }

        out.push_str("\nconstraint hot-spots (by evaluations):\n");
        if self.constraints.is_empty() {
            out.push_str("  (no cprof/violation lines in this trace)\n");
        } else {
            let total: u64 = self.constraints.iter().map(|c| c.evaluations).sum();
            writeln!(
                out,
                "  {:<24} {:>12} {:>10} {:>11} {:>7}",
                "constraint", "evaluations", "conflicts", "violations", "share"
            )
            .unwrap();
            for c in &self.constraints {
                let share = if total == 0 {
                    0.0
                } else {
                    c.evaluations as f64 * 100.0 / total as f64
                };
                writeln!(
                    out,
                    "  {:<24} {:>12} {:>10} {:>11} {share:>6.1}%",
                    c.name, c.evaluations, c.conflicts, c.violations
                )
                .unwrap();
            }
        }

        out.push_str("\nproperty attribution (by narrowings):\n");
        if self.properties.is_empty() {
            out.push_str("  (no pprof lines or op targets in this trace)\n");
        } else {
            writeln!(
                out,
                "  {:<24} {:>11} {:>8} {:>6}",
                "property", "narrowings", "assigns", "spins"
            )
            .unwrap();
            for p in &self.properties {
                writeln!(
                    out,
                    "  {:<24} {:>11} {:>8} {:>6}",
                    p.name, p.narrowings, p.assigns, p.spins
                )
                .unwrap();
            }
        }

        out.push_str("\ndesigner profiles:\n");
        if self.designers.is_empty() {
            out.push_str("  (no op lines in this trace)\n");
        } else {
            writeln!(
                out,
                "  {:<9} {:>11} {:>12} {:>6} {:>14}",
                "designer", "operations", "evaluations", "spins", "notifications"
            )
            .unwrap();
            for d in &self.designers {
                writeln!(
                    out,
                    "  {:<9} {:>11} {:>12} {:>6} {:>14}",
                    d.designer, d.operations, d.evaluations, d.spins, d.notifications
                )
                .unwrap();
            }
        }

        let p = &self.propagation;
        out.push_str("\npropagation:\n");
        writeln!(
            out,
            "  runs {} (full {}, incremental {})  fixpoints {}  max waves {}  cross violations {}",
            p.runs, p.full, p.incremental, p.fixpoints, p.max_waves, p.cross_violations
        )
        .unwrap();

        out.push_str("\nspan timings (µs, spans nest tick ⊃ op ⊃ propagation ⊃ wave):\n");
        if self.timings.is_empty() {
            out.push_str("  (no dur_us fields in this trace)\n");
        } else {
            writeln!(
                out,
                "  {:<12} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "span", "count", "total", "mean", "p50", "p90", "p99", "max"
            )
            .unwrap();
            for t in &self.timings {
                writeln!(
                    out,
                    "  {:<12} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    t.span, t.count, t.total_us, t.mean_us, t.p50_us, t.p90_us, t.p99_us, t.max_us
                )
                .unwrap();
            }
        }
        out
    }

    /// Serializes the report as flat JSONL — the same shape as a trace
    /// (first field the string tag `"t"`), so the output round-trips
    /// through [`parse_trace`](crate::parse_trace). Tags: `a_total`,
    /// `a_constraint`, `a_property`, `a_designer`, `a_propagation`,
    /// `a_timing`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"t\":\"a_total\"");
        jfield_str(&mut out, "mode", &self.mode);
        jfield_u64(&mut out, "seed", self.seed.unwrap_or(0));
        jfield_bool(&mut out, "completed", self.completed.unwrap_or(false));
        for name in DIFF_STATISTICS {
            jfield_u64(&mut out, name, self.total(name));
        }
        out.push_str("}\n");
        for c in &self.constraints {
            out.push_str("{\"t\":\"a_constraint\"");
            jfield_str(&mut out, "name", &c.name);
            jfield_u64(&mut out, "evaluations", c.evaluations);
            jfield_u64(&mut out, "conflicts", c.conflicts);
            jfield_u64(&mut out, "violations", c.violations);
            out.push_str("}\n");
        }
        for p in &self.properties {
            out.push_str("{\"t\":\"a_property\"");
            jfield_str(&mut out, "name", &p.name);
            jfield_u64(&mut out, "narrowings", p.narrowings);
            jfield_u64(&mut out, "assigns", p.assigns);
            jfield_u64(&mut out, "spins", p.spins);
            out.push_str("}\n");
        }
        for d in &self.designers {
            out.push_str("{\"t\":\"a_designer\"");
            jfield_u64(&mut out, "designer", d.designer);
            jfield_u64(&mut out, "operations", d.operations);
            jfield_u64(&mut out, "evaluations", d.evaluations);
            jfield_u64(&mut out, "spins", d.spins);
            jfield_u64(&mut out, "notifications", d.notifications);
            out.push_str("}\n");
        }
        let p = &self.propagation;
        out.push_str("{\"t\":\"a_propagation\"");
        jfield_u64(&mut out, "runs", p.runs);
        jfield_u64(&mut out, "full", p.full);
        jfield_u64(&mut out, "incremental", p.incremental);
        jfield_u64(&mut out, "fixpoints", p.fixpoints);
        jfield_u64(&mut out, "max_waves", p.max_waves);
        jfield_u64(&mut out, "cross_violations", p.cross_violations);
        out.push_str("}\n");
        for t in &self.timings {
            out.push_str("{\"t\":\"a_timing\"");
            jfield_str(&mut out, "span", &t.span);
            jfield_u64(&mut out, "count", t.count);
            jfield_u64(&mut out, "total_us", t.total_us);
            jfield_u64(&mut out, "mean_us", t.mean_us);
            jfield_u64(&mut out, "p50_us", t.p50_us);
            jfield_u64(&mut out, "p90_us", t.p90_us);
            jfield_u64(&mut out, "p99_us", t.p99_us);
            jfield_u64(&mut out, "max_us", t.max_us);
            out.push_str("}\n");
        }
        out
    }
}

fn jfield_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn jfield_bool(out: &mut String, key: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn jfield_str(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Side-by-side λ=T vs λ=F comparison over the paper's four statistics
/// (plus the propagation internals), rendered as a table. `a` and `b` are
/// typically an `adpm` and a `conventional` analysis of the same scenario
/// and seed.
pub fn render_comparison(a: &AnalysisReport, b: &AnalysisReport) -> String {
    let name = |r: &AnalysisReport, fallback: &str| {
        if r.mode.is_empty() {
            fallback.to_string()
        } else {
            r.mode.clone()
        }
    };
    let a_name = name(a, "a");
    let b_name = name(b, "b");
    let mut out = String::from("mode comparison (the paper's four statistics first):\n");
    writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>9}",
        "statistic", a_name, b_name, "b/a"
    )
    .unwrap();
    for stat in DIFF_STATISTICS {
        let av = a.total(stat);
        let bv = b.total(stat);
        let ratio = if av == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", bv as f64 / av as f64)
        };
        writeln!(out, "  {stat:<16} {av:>12} {bv:>12} {ratio:>9}").unwrap();
    }
    out
}

/// Noise thresholds for [`diff_traces`]: statistic *b* regresses against
/// *a* when `b > a + max(absolute, a × relative)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiffThresholds {
    /// Absolute slack, in statistic units.
    pub absolute: u64,
    /// Relative slack, as a fraction of the baseline value.
    pub relative: f64,
}

/// One statistic's delta between a baseline trace and a candidate trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatDelta {
    /// Statistic name (a [`DIFF_STATISTICS`] entry).
    pub name: String,
    /// Baseline value.
    pub a: u64,
    /// Candidate value.
    pub b: u64,
    /// Whether the candidate regressed past the thresholds.
    pub regression: bool,
}

/// The result of diffing two traces (see [`diff_traces`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDiff {
    /// One delta per [`DIFF_STATISTICS`] entry, in order.
    pub deltas: Vec<StatDelta>,
}

impl TraceDiff {
    /// Whether any statistic regressed.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regression)
    }

    /// Number of statistics that changed at all (in either direction).
    pub fn changed(&self) -> usize {
        self.deltas.iter().filter(|d| d.a != d.b).count()
    }

    /// Renders the diff as a table, flagging regressions.
    pub fn render(&self) -> String {
        let mut out = String::from("trace diff (b against baseline a):\n");
        writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>12}",
            "statistic", "a", "b", "delta"
        )
        .unwrap();
        for d in &self.deltas {
            let delta = d.b as i128 - d.a as i128;
            let flag = if d.regression { "  REGRESSION" } else { "" };
            writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>+12}{flag}",
                d.name, d.a, d.b, delta
            )
            .unwrap();
        }
        let regressions = self.deltas.iter().filter(|d| d.regression).count();
        writeln!(
            out,
            "  {} statistic(s) changed, {} regression(s)",
            self.changed(),
            regressions
        )
        .unwrap();
        out
    }
}

/// Compares candidate trace `b` against baseline trace `a` over
/// [`DIFF_STATISTICS`]. A statistic regresses when it *grows* beyond the
/// thresholds — every statistic here is a cost (evaluations, violations,
/// spins, ...), so shrinking is always fine.
pub fn diff_traces(
    a: &AnalysisReport,
    b: &AnalysisReport,
    thresholds: &DiffThresholds,
) -> TraceDiff {
    let deltas = DIFF_STATISTICS
        .iter()
        .map(|stat| {
            let av = a.total(stat);
            let bv = b.total(stat);
            let slack = (av as f64 * thresholds.relative).ceil() as u64;
            let allowed = av.saturating_add(thresholds.absolute.max(slack));
            StatDelta {
                name: (*stat).to_string(),
                a: av,
                b: bv,
                regression: bv > allowed,
            }
        })
        .collect();
    TraceDiff { deltas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_trace;

    const TRACE: &str = concat!(
        "{\"t\":\"run_start\",\"mode\":\"adpm\",\"seed\":7,\"designers\":2,\"properties\":3,\"constraints\":2}\n",
        "{\"t\":\"wave\",\"wave\":0,\"queue_len\":2,\"evaluations\":2,\"narrowed\":1,\"dur_us\":10}\n",
        "{\"t\":\"cprof\",\"name\":\"cap\",\"evaluations\":3,\"conflict\":false}\n",
        "{\"t\":\"cprof\",\"name\":\"sum\",\"evaluations\":1,\"conflict\":true}\n",
        "{\"t\":\"pprof\",\"name\":\"o.x\",\"narrowings\":1,\"dur_us\":1}\n",
        "{\"t\":\"propagation\",\"kind\":\"full\",\"seeded\":2,\"waves\":1,\"evaluations\":4,\"narrowed\":1,\"conflicts\":1,\"fixpoint\":true,\"dur_us\":30}\n",
        "{\"t\":\"violation\",\"seq\":1,\"constraint\":\"sum\",\"cross\":true}\n",
        "{\"t\":\"op\",\"seq\":1,\"designer\":0,\"kind\":\"assign\",\"mode\":\"adpm\",\"target\":\"o.x\",\"evaluations\":4,\"violations_after\":1,\"new_violations\":1,\"spin\":true,\"dur_us\":50}\n",
        "{\"t\":\"fanout\",\"seq\":1,\"recipients\":2,\"events\":3,\"dur_us\":5}\n",
        "{\"t\":\"tick\",\"tick\":0,\"designer\":0,\"outcome\":\"executed\",\"dur_us\":70}\n",
        "{\"t\":\"summary\",\"operations\":1,\"evaluations\":4,\"spins\":1,\"violations\":1,\"completed\":false}\n",
    );

    fn report() -> AnalysisReport {
        analyze_trace(&parse_trace(TRACE).expect("valid trace"))
    }

    #[test]
    fn attribution_tables_are_built_and_sorted() {
        let r = report();
        assert_eq!(r.mode, "adpm");
        assert_eq!(r.seed, Some(7));
        assert_eq!(r.completed, Some(false));
        assert_eq!(r.constraints.len(), 2);
        assert_eq!(r.constraints[0].name, "cap");
        assert_eq!(r.constraints[0].evaluations, 3);
        assert_eq!(r.constraints[1].conflicts, 1);
        assert_eq!(r.constraints[1].violations, 1);
        let x = &r.properties[0];
        assert_eq!((x.name.as_str(), x.narrowings, x.assigns, x.spins), ("o.x", 1, 1, 1));
        assert_eq!(r.designers.len(), 1);
        assert_eq!(r.designers[0].operations, 1);
        assert_eq!(r.designers[0].notifications, 3);
        assert_eq!(r.propagation.runs, 1);
        assert_eq!(r.propagation.cross_violations, 1);
    }

    #[test]
    fn totals_fall_back_to_the_event_stream_without_a_counters_line() {
        let r = report();
        assert_eq!(r.total("operations"), 1);
        assert_eq!(r.total("evaluations"), 4);
        assert_eq!(r.total("spins"), 1);
        assert_eq!(r.total("waves"), 1);
        assert_eq!(r.total("notifications"), 3);
    }

    #[test]
    fn a_counters_line_is_authoritative() {
        let text = format!(
            "{TRACE}{}",
            "{\"t\":\"counters\",\"operations\":1,\"evaluations\":99,\"propagations\":1,\"waves\":1,\"narrowings\":1,\"conflicts\":1,\"seed_constraints\":2,\"violations\":1,\"spins\":1,\"notifications\":3,\"ticks_executed\":1,\"ticks_stalled\":0}\n"
        );
        let r = analyze_trace(&parse_trace(&text).expect("valid trace"));
        assert_eq!(r.total("evaluations"), 99);
        assert_eq!(r.total("ticks_executed"), 1);
    }

    #[test]
    fn timings_roll_up_in_nesting_order() {
        let r = report();
        let spans: Vec<&str> = r.timings.iter().map(|t| t.span.as_str()).collect();
        assert_eq!(spans, vec!["tick", "op", "propagation", "wave", "fanout"]);
        let tick = &r.timings[0];
        assert_eq!(tick.count, 1);
        assert_eq!(tick.total_us, 70);
        assert_eq!(tick.max_us, 70);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = report().render();
        for needle in [
            "trace analysis (mode adpm, seed 7",
            "totals:",
            "constraint hot-spots",
            "property attribution",
            "designer profiles",
            "propagation:",
            "span timings",
            "cap",
            "o.x",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn jsonl_output_round_trips_through_the_trace_parser() {
        let jsonl = report().to_jsonl();
        let lines = parse_trace(&jsonl).expect("analysis output must reparse");
        assert_eq!(lines[0].tag(), "a_total");
        assert_eq!(lines[0].u64_field("evaluations"), Some(4));
        assert!(lines.iter().any(|l| l.tag() == "a_constraint"));
        assert!(lines.iter().any(|l| l.tag() == "a_timing"));
    }

    #[test]
    fn identical_traces_diff_clean() {
        let r = report();
        let diff = diff_traces(&r, &r, &DiffThresholds::default());
        assert!(!diff.has_regressions());
        assert_eq!(diff.changed(), 0);
        assert!(diff.render().contains("0 regression(s)"));
    }

    #[test]
    fn inflated_statistics_trip_the_regression_gate() {
        let a = report();
        let mut b = report();
        b.totals.insert("evaluations".into(), 1_000);
        let diff = diff_traces(&a, &b, &DiffThresholds::default());
        assert!(diff.has_regressions());
        assert!(diff.render().contains("REGRESSION"));
        // Thresholds forgive the growth...
        let lax = DiffThresholds {
            absolute: 1_000,
            relative: 0.0,
        };
        assert!(!diff_traces(&a, &b, &lax).has_regressions());
        let lax = DiffThresholds {
            absolute: 0,
            relative: 500.0,
        };
        assert!(!diff_traces(&a, &b, &lax).has_regressions());
        // ...and improvements never regress.
        let mut better = report();
        better.totals.insert("evaluations".into(), 1);
        assert!(!diff_traces(&a, &better, &DiffThresholds::default()).has_regressions());
    }

    #[test]
    fn comparison_report_tables_both_modes() {
        let a = report();
        let mut b = report();
        b.mode = "conventional".into();
        b.totals.insert("operations".into(), 5);
        let text = render_comparison(&a, &b);
        assert!(text.contains("adpm"));
        assert!(text.contains("conventional"));
        assert!(text.contains("5.00"), "{text}");
    }

    #[test]
    fn empty_trace_analyzes_to_an_empty_report() {
        let r = analyze_trace(&[]);
        assert!(r.constraints.is_empty());
        assert!(r.timings.is_empty());
        assert_eq!(r.total("operations"), 0);
        assert!(r.render().contains("no cprof"));
        let reparsed = parse_trace(&r.to_jsonl()).expect("still valid jsonl");
        assert!(!reparsed.is_empty());
    }
}
