//! Counters and structured trace events.

use crate::json::escape_into;

/// The closed set of aggregate counters the instrumented hot paths bump.
///
/// Counter semantics (the full glossary lives in `docs/OBSERVABILITY.md`):
///
/// | counter | incremented when |
/// |---|---|
/// | `Operations` | a design operation is executed by the DPM |
/// | `Evaluations` | a constraint evaluation runs (HC4 revision or verification) |
/// | `Propagations` | one propagation run (worklist to fixpoint) completes |
/// | `Waves` | one BFS level of the propagation worklist drains |
/// | `Narrowings` | a revision narrows a property's feasible subspace (one event per property × revision) |
/// | `Conflicts` | propagation finds a constraint unsatisfiable |
/// | `SeedConstraints` | a constraint is seeded onto the initial propagation worklist |
/// | `Violations` | an operation newly discovers a violated constraint |
/// | `Spins` | an executed operation is a design spin |
/// | `Notifications` | an event is routed to a designer by the NM |
/// | `TicksExecuted` | a simulation tick executes an operation |
/// | `TicksStalled` | a simulation tick finds no designer with a proposal |
/// | `SessionOps` | a collaboration session's command loop processes a command |
/// | `InboxDelivered` | an interest-filtered event lands in a subscriber's inbox |
/// | `InboxDropped` | a full inbox drops an incoming event (overflow accounting) |
/// | `WireBytesSkipped` | the wire reader discards bytes resynchronizing past an oversized line |
/// | `Reconnects` | a resilient client re-establishes a lost collaboration connection |
/// | `HeartbeatsMissed` | a server connection passes its idle timeout without any client frame |
/// | `JournalBytes` | bytes appended to a session's operation journal |
/// | `RecoveryOps` | an operation is re-executed from a journal during crash recovery |
/// | `FaultsInjected` | the deterministic fault layer perturbs (drops, delays, corrupts...) a frame |
/// | `CompiledEvals` | a flat-program HC4 revision runs on the compiled propagation engine |
/// | `ComponentsParallel` | a connected component is propagated by a parallel worker |
/// | `SessionsActive` | a named session is added to a collaboration server's registry |
/// | `SessionsCreated` | a client's `create` frame dynamically creates a new named session |
/// | `AttachRejected` | a session `create`/`attach` request is rejected (unknown name, creation disabled...) |
/// | `AcceptErrors` | the server's accept loop hits an `accept(2)` error and backs off |
/// | `NegotiationRounds` | the negotiation engine completes one propose/answer round |
/// | `ProposalsSent` | a relaxation proposal is put to the conflict's participants |
/// | `ConflictsResolved` | a negotiation ends with an accepted, applied relaxation |
/// | `ConflictsAbandoned` | a negotiation exhausts its round budget without agreement |
/// | `JournalCompactions` | the journal writer replaces the journal with a snapshot + empty tail |
/// | `SnapshotBytes` | bytes written into `jsnap`/`jsop` snapshot sections during compaction |
/// | `RecoveryReplayedOps` | a post-snapshot tail operation is replayed during recovery (the bounded part) |
/// | `JournalDegradations` | a journal append or fsync fails and the lines are parked in the in-memory backlog |
/// | `OverloadSheds` | the server sheds work at a resource limit (admission reject, in-flight bound, slow-client eviction, degraded-journal shed) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Executed design operations.
    Operations,
    /// Constraint evaluations (the paper's tool-run proxy).
    Evaluations,
    /// Completed propagation runs.
    Propagations,
    /// Propagation worklist waves (BFS levels).
    Waves,
    /// Narrowing events (property × revision) during propagation.
    Narrowings,
    /// Constraints found unsatisfiable during propagation.
    Conflicts,
    /// Constraints seeded onto the initial propagation worklist (all of
    /// them for a full run, only the dirty-adjacent ones incrementally).
    SeedConstraints,
    /// Newly discovered constraint violations.
    Violations,
    /// Design spins (cross-subsystem rework operations).
    Spins,
    /// Events routed to designers by the Notification Manager.
    Notifications,
    /// Simulation ticks that executed an operation.
    TicksExecuted,
    /// Simulation ticks that stalled (no proposal).
    TicksStalled,
    /// Commands processed by a collaboration session's command loop.
    SessionOps,
    /// Events delivered into subscriber inboxes by the notification router.
    InboxDelivered,
    /// Events dropped by full subscriber inboxes (overflow accounting).
    InboxDropped,
    /// Bytes the wire reader discarded while resynchronizing past an
    /// oversized line (never silent: surfaced as a warning frame too).
    WireBytesSkipped,
    /// Connections re-established by a resilient client after a loss.
    Reconnects,
    /// Server-side idle timeouts: a connection produced no frame (not even
    /// a heartbeat reply) for the whole idle window and was disconnected.
    HeartbeatsMissed,
    /// Bytes appended to a session's operation journal.
    JournalBytes,
    /// Operations re-executed from a journal during crash recovery.
    RecoveryOps,
    /// Frames perturbed (dropped, delayed, duplicated, corrupted,
    /// truncated, or killed) by the deterministic fault-injection layer.
    FaultsInjected,
    /// Flat-program HC4 revisions run by the compiled propagation engine
    /// (its analogue of `Evaluations`, which it also bumps).
    CompiledEvals,
    /// Connected components handed to `std::thread::scope` workers by a
    /// parallel propagation run.
    ComponentsParallel,
    /// Named sessions added to a collaboration server's registry (the
    /// default session, `--sessions N` pre-creates, and dynamic creates).
    SessionsActive,
    /// Named sessions created dynamically by a client's `create` frame.
    SessionsCreated,
    /// Session `create`/`attach` requests the registry rejected (unknown
    /// name, dynamic creation disabled, invalid name, or factory failure).
    AttachRejected,
    /// `accept(2)` errors hit by the server's accept loop (each one also
    /// triggers a short backoff sleep so persistent errors cannot busy-spin).
    AcceptErrors,
    /// Completed negotiation rounds (one ranked proposal put to the
    /// conflict's participants and answered by each of them).
    NegotiationRounds,
    /// Relaxation proposals sent to participants by the negotiation engine.
    ProposalsSent,
    /// Conflicts closed by an accepted relaxation (no backtracking needed).
    ConflictsResolved,
    /// Conflicts the negotiation engine gave up on (round budget exhausted
    /// or no viable proposal), leaving resolution to ordinary backtracking.
    ConflictsAbandoned,
    /// Journal compactions: the journal was atomically replaced by a
    /// snapshot (state program) plus an empty tail.
    JournalCompactions,
    /// Bytes written into snapshot (`jsnap` + `jsop`) sections.
    SnapshotBytes,
    /// Post-snapshot tail operations replayed during recovery — the part
    /// compaction bounds (`RecoveryOps` counts everything re-executed,
    /// snapshot program included).
    RecoveryReplayedOps,
    /// Journal degradation events: an append or fsync failed and the
    /// serialized lines were parked in the writer's in-memory backlog.
    JournalDegradations,
    /// Work shed at a resource limit: admission rejects, in-flight-bounded
    /// submits answered `overloaded`, slow-client evictions, and writes
    /// shed while the journal backlog is over its limit.
    OverloadSheds,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 36] = [
        Counter::Operations,
        Counter::Evaluations,
        Counter::Propagations,
        Counter::Waves,
        Counter::Narrowings,
        Counter::Conflicts,
        Counter::SeedConstraints,
        Counter::Violations,
        Counter::Spins,
        Counter::Notifications,
        Counter::TicksExecuted,
        Counter::TicksStalled,
        Counter::SessionOps,
        Counter::InboxDelivered,
        Counter::InboxDropped,
        Counter::WireBytesSkipped,
        Counter::Reconnects,
        Counter::HeartbeatsMissed,
        Counter::JournalBytes,
        Counter::RecoveryOps,
        Counter::FaultsInjected,
        Counter::CompiledEvals,
        Counter::ComponentsParallel,
        Counter::SessionsActive,
        Counter::SessionsCreated,
        Counter::AttachRejected,
        Counter::AcceptErrors,
        Counter::NegotiationRounds,
        Counter::ProposalsSent,
        Counter::ConflictsResolved,
        Counter::ConflictsAbandoned,
        Counter::JournalCompactions,
        Counter::SnapshotBytes,
        Counter::RecoveryReplayedOps,
        Counter::JournalDegradations,
        Counter::OverloadSheds,
    ];

    /// Number of counters (the size of a dense counter array).
    pub const COUNT: usize = Counter::ALL.len();

    /// Dense index of this counter in `0..Counter::COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSONL key in counter lines.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Operations => "operations",
            Counter::Evaluations => "evaluations",
            Counter::Propagations => "propagations",
            Counter::Waves => "waves",
            Counter::Narrowings => "narrowings",
            Counter::Conflicts => "conflicts",
            Counter::SeedConstraints => "seed_constraints",
            Counter::Violations => "violations",
            Counter::Spins => "spins",
            Counter::Notifications => "notifications",
            Counter::TicksExecuted => "ticks_executed",
            Counter::TicksStalled => "ticks_stalled",
            Counter::SessionOps => "session_ops",
            Counter::InboxDelivered => "inbox_delivered",
            Counter::InboxDropped => "inbox_dropped",
            Counter::WireBytesSkipped => "wire_bytes_skipped",
            Counter::Reconnects => "reconnects",
            Counter::HeartbeatsMissed => "heartbeats_missed",
            Counter::JournalBytes => "journal_bytes",
            Counter::RecoveryOps => "recovery_ops",
            Counter::FaultsInjected => "faults_injected",
            Counter::CompiledEvals => "compiled_evals",
            Counter::ComponentsParallel => "components_parallel",
            Counter::SessionsActive => "sessions_active",
            Counter::SessionsCreated => "sessions_created",
            Counter::AttachRejected => "attach_rejected",
            Counter::AcceptErrors => "accept_errors",
            Counter::NegotiationRounds => "negotiation_rounds",
            Counter::ProposalsSent => "proposals_sent",
            Counter::ConflictsResolved => "conflicts_resolved",
            Counter::ConflictsAbandoned => "conflicts_abandoned",
            Counter::JournalCompactions => "journal_compactions",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::RecoveryReplayedOps => "recovery_replayed_ops",
            Counter::JournalDegradations => "journal_degradations",
            Counter::OverloadSheds => "overload_sheds",
        }
    }
}

/// One structured span emitted by an instrumented hot path.
///
/// Events borrow their string fields so that emitting one costs no
/// allocation when the sink is disabled or aggregates in memory; the JSONL
/// sink serializes them immediately. The serialized form is one flat JSON
/// object per event, tagged by `"t"` — the schema is documented in
/// `docs/OBSERVABILITY.md` and round-trips through [`crate::parse_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent<'a> {
    /// Context line emitted once at the start of a traced simulation run.
    RunStart {
        /// Management mode, `"adpm"` or `"conventional"` (the paper's λ).
        mode: &'a str,
        /// Simulation seed.
        seed: u64,
        /// Team size.
        designers: u32,
        /// Properties in the scenario's constraint network.
        properties: u32,
        /// Constraints in the scenario's constraint network.
        constraints: u32,
    },
    /// One BFS level of the propagation worklist drained.
    PropagationWave {
        /// 0-based wave number within this propagation run.
        wave: u32,
        /// Worklist length at the start of the wave (its width).
        queue_len: u32,
        /// HC4 revisions performed during the wave.
        evaluations: u64,
        /// Narrowing events (property × constraint) during the wave.
        narrowed: u32,
        /// Wall-clock duration of the wave, µs (deterministic under a
        /// manual clock).
        dur_us: u64,
    },
    /// One propagation run reached fixpoint (or its evaluation cap).
    PropagationDone {
        /// `"full"` or `"incremental"` — which propagation path ran.
        kind: &'a str,
        /// Constraints seeded onto the initial worklist (all of them for a
        /// full run, only the dirty-adjacent ones incrementally).
        seeded: u32,
        /// Waves the worklist took.
        waves: u32,
        /// Total constraint evaluations of the run.
        evaluations: u64,
        /// Properties whose feasible subspace ended narrower than `E_i`.
        narrowed: u32,
        /// Constraints found unsatisfiable.
        conflicts: u32,
        /// False when `max_evaluations` censored the run.
        fixpoint: bool,
        /// Duration of the whole run (including the status sweep), µs.
        dur_us: u64,
    },
    /// Per-constraint profile of one propagation run, emitted (while
    /// tracing) once per constraint that was evaluated, just before the
    /// run's `propagation` footer. Summing `evaluations` over a run's
    /// `cprof` lines reproduces the footer's `evaluations` total.
    ConstraintProfile {
        /// Constraint name.
        name: &'a str,
        /// Evaluations charged to the constraint in this run (HC4
        /// revisions plus its status-sweep check, if swept).
        evaluations: u64,
        /// Whether this run found the constraint unsatisfiable.
        conflict: bool,
    },
    /// Per-property profile of one propagation run, emitted (while
    /// tracing) once per property narrowed in the run, before the
    /// `propagation` footer. Summing `narrowings` over a run's `pprof`
    /// lines reproduces the run's narrowing-event count.
    PropertyProfile {
        /// Property name, `object.property`.
        name: &'a str,
        /// Narrowing events charged to the property in this run.
        narrowings: u64,
    },
    /// One newly discovered constraint violation, emitted by the DPM after
    /// the operation that surfaced it.
    Violation {
        /// Sequence number of the discovering operation.
        seq: u64,
        /// Violated constraint's name.
        constraint: &'a str,
        /// Whether the constraint spans more than one design object (the
        /// paper's cross-subsystem case — the expensive kind).
        cross: bool,
    },
    /// The DPM executed one design operation.
    Operation {
        /// 1-based sequence number in the design history.
        seq: u64,
        /// Index of the requesting designer.
        designer: u32,
        /// Operator kind: `"assign"`, `"unbind"`, `"verify"`, `"decompose"`.
        kind: &'a str,
        /// Management mode, `"adpm"` or `"conventional"`.
        mode: &'a str,
        /// Target property of an assign/unbind as `object.property`, empty
        /// for operators without a single property target.
        target: &'a str,
        /// Constraint evaluations attributed to the operation.
        evaluations: u64,
        /// Violations known immediately after the operation.
        violations_after: u32,
        /// Violations newly discovered by the operation.
        new_violations: u32,
        /// Whether the operation was a design spin.
        spin: bool,
        /// Duration of the operation (propagation included), µs.
        dur_us: u64,
    },
    /// The Notification Manager routed events after an operation.
    NotificationFanout {
        /// Sequence number of the operation whose events were routed.
        seq: u64,
        /// Designers that received at least one event.
        recipients: u32,
        /// Total events delivered (sum over recipients).
        events: u32,
        /// Duration of the routing + delivery, µs.
        dur_us: u64,
    },
    /// One simulation engine tick.
    Tick {
        /// 0-based tick number.
        tick: u64,
        /// Designer whose proposal was executed (`u32::MAX` if none).
        designer: u32,
        /// `"executed"`, `"stalled"`, or `"complete"`.
        outcome: &'a str,
        /// Duration of the tick, µs.
        dur_us: u64,
    },
    /// A collaboration session's command loop finished one command.
    SessionCommand {
        /// Sequence number of the command within the session (1-based).
        seq: u64,
        /// Command kind: `"submit"`, `"subscribe"`, `"snapshot"`,
        /// `"shutdown"`.
        kind: &'a str,
        /// Index of the designer the command acted for (`u32::MAX` when
        /// the command has no designer, e.g. `snapshot`).
        designer: u32,
        /// `"executed"`, `"rejected"`, or `"ok"`.
        outcome: &'a str,
        /// Duration of the command, µs.
        dur_us: u64,
    },
    /// The notification router fanned an operation's events out to the
    /// subscribed inboxes.
    InboxFanout {
        /// Sequence number of the operation whose events were routed.
        seq: u64,
        /// Subscriptions considered.
        subscribers: u32,
        /// Events delivered into inboxes (after interest filtering).
        delivered: u32,
        /// Events dropped by full inboxes.
        dropped: u32,
        /// Duration of the fanout, µs.
        dur_us: u64,
    },
    /// A session recovered its history from an operation journal. The
    /// line doubles as the `recover` span carrier (its `dur_us`).
    Recovery {
        /// Operations re-executed from the journal.
        ops: u64,
        /// Snapshot checkpoints verified during the replay.
        checkpoints: u64,
        /// Journal bytes read (valid prefix only).
        journal_bytes: u64,
        /// Trailing bytes discarded as a torn/invalid suffix.
        truncated_bytes: u64,
        /// Whether the replay reproduced every recorded outcome.
        faithful: bool,
        /// Duration of the recovery, µs.
        dur_us: u64,
    },
    /// A resilient client re-established a lost connection. The line
    /// doubles as the `reconnect` span carrier (its `dur_us`).
    Reconnect {
        /// Designer index the client acts for.
        designer: u32,
        /// 1-based reconnect attempt that finally succeeded.
        attempt: u32,
        /// Event index the client resumed its subscription from (0 when
        /// it had no subscription or had seen nothing).
        resumed_from: u64,
        /// Duration from first failure to restored connection, µs.
        dur_us: u64,
    },
    /// The wire reader discarded bytes while resynchronizing past an
    /// oversized line.
    WireSkip {
        /// Bytes discarded (delimiter included).
        bytes: u64,
    },
    /// The compiled propagation engine lowered the constraint network to
    /// flat interval programs, once per propagation run. The line doubles
    /// as the `compile` span carrier (its `dur_us`).
    CompileDone {
        /// Constraints lowered to flat programs.
        constraints: u32,
        /// Total flat-program instructions emitted across all programs.
        instructions: u64,
        /// Duration of the lowering, µs.
        dur_us: u64,
    },
    /// One connected-component worker of a parallel propagation run
    /// finished. The line doubles as the `par_wave` span carrier (its
    /// `dur_us`).
    ParallelComponent {
        /// 0-based component index (components are ordered by their
        /// smallest constraint id).
        component: u32,
        /// Constraints in the component.
        constraints: u32,
        /// Flat-program HC4 revisions the worker performed.
        evaluations: u64,
        /// Worklist waves (BFS levels) the worker took.
        waves: u32,
        /// Wall-clock duration of the worker, µs.
        dur_us: u64,
    },
    /// One conflict negotiation finished (resolved or abandoned). The
    /// line doubles as the `negotiate` span carrier (its `dur_us`).
    Negotiation {
        /// Sequence number of the operation whose violation triggered it.
        seq: u64,
        /// Name of the constraint the negotiation settled on (the applied
        /// relaxation's target, or the seed conflict when abandoned).
        constraint: &'a str,
        /// Propose/answer rounds run.
        rounds: u32,
        /// Relaxation proposals sent to participants across all rounds.
        proposals: u32,
        /// Designers whose viewpoints the minimal conflict set touched.
        participants: u32,
        /// `"resolved"` or `"abandoned"`.
        outcome: &'a str,
        /// Duration from MCS reduction to the final verdict, µs.
        dur_us: u64,
    },
    /// Final line of a simulation run.
    RunSummary {
        /// Executed operations.
        operations: u64,
        /// Total constraint evaluations, including setup propagation.
        evaluations: u64,
        /// Total design spins.
        spins: u64,
        /// Total violations found over the run.
        violations: u64,
        /// Whether the termination condition was reached.
        completed: bool,
    },
}

impl TraceEvent<'_> {
    /// The `"t"` tag the serialized form carries.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::PropagationWave { .. } => "wave",
            TraceEvent::PropagationDone { .. } => "propagation",
            TraceEvent::ConstraintProfile { .. } => "cprof",
            TraceEvent::PropertyProfile { .. } => "pprof",
            TraceEvent::Violation { .. } => "violation",
            TraceEvent::Operation { .. } => "op",
            TraceEvent::NotificationFanout { .. } => "fanout",
            TraceEvent::Tick { .. } => "tick",
            TraceEvent::SessionCommand { .. } => "session",
            TraceEvent::InboxFanout { .. } => "notify",
            TraceEvent::Recovery { .. } => "recover",
            TraceEvent::Reconnect { .. } => "reconnect",
            TraceEvent::WireSkip { .. } => "wire_skip",
            TraceEvent::CompileDone { .. } => "compile",
            TraceEvent::ParallelComponent { .. } => "par_wave",
            TraceEvent::Negotiation { .. } => "negotiate",
            TraceEvent::RunSummary { .. } => "summary",
        }
    }

    /// Appends the event's JSON object (no trailing newline) to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t\":\"");
        out.push_str(self.tag());
        out.push('"');
        match *self {
            TraceEvent::RunStart {
                mode,
                seed,
                designers,
                properties,
                constraints,
            } => {
                field_str(out, "mode", mode);
                field_u64(out, "seed", seed);
                field_u64(out, "designers", designers.into());
                field_u64(out, "properties", properties.into());
                field_u64(out, "constraints", constraints.into());
            }
            TraceEvent::PropagationWave {
                wave,
                queue_len,
                evaluations,
                narrowed,
                dur_us,
            } => {
                field_u64(out, "wave", wave.into());
                field_u64(out, "queue_len", queue_len.into());
                field_u64(out, "evaluations", evaluations);
                field_u64(out, "narrowed", narrowed.into());
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::PropagationDone {
                kind,
                seeded,
                waves,
                evaluations,
                narrowed,
                conflicts,
                fixpoint,
                dur_us,
            } => {
                field_str(out, "kind", kind);
                field_u64(out, "seeded", seeded.into());
                field_u64(out, "waves", waves.into());
                field_u64(out, "evaluations", evaluations);
                field_u64(out, "narrowed", narrowed.into());
                field_u64(out, "conflicts", conflicts.into());
                field_bool(out, "fixpoint", fixpoint);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::ConstraintProfile {
                name,
                evaluations,
                conflict,
            } => {
                field_str(out, "name", name);
                field_u64(out, "evaluations", evaluations);
                field_bool(out, "conflict", conflict);
            }
            TraceEvent::PropertyProfile { name, narrowings } => {
                field_str(out, "name", name);
                field_u64(out, "narrowings", narrowings);
            }
            TraceEvent::Violation {
                seq,
                constraint,
                cross,
            } => {
                field_u64(out, "seq", seq);
                field_str(out, "constraint", constraint);
                field_bool(out, "cross", cross);
            }
            TraceEvent::Operation {
                seq,
                designer,
                kind,
                mode,
                target,
                evaluations,
                violations_after,
                new_violations,
                spin,
                dur_us,
            } => {
                field_u64(out, "seq", seq);
                field_u64(out, "designer", designer.into());
                field_str(out, "kind", kind);
                field_str(out, "mode", mode);
                field_str(out, "target", target);
                field_u64(out, "evaluations", evaluations);
                field_u64(out, "violations_after", violations_after.into());
                field_u64(out, "new_violations", new_violations.into());
                field_bool(out, "spin", spin);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::NotificationFanout {
                seq,
                recipients,
                events,
                dur_us,
            } => {
                field_u64(out, "seq", seq);
                field_u64(out, "recipients", recipients.into());
                field_u64(out, "events", events.into());
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::Tick {
                tick,
                designer,
                outcome,
                dur_us,
            } => {
                field_u64(out, "tick", tick);
                field_u64(out, "designer", designer.into());
                field_str(out, "outcome", outcome);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::SessionCommand {
                seq,
                kind,
                designer,
                outcome,
                dur_us,
            } => {
                field_u64(out, "seq", seq);
                field_str(out, "kind", kind);
                field_u64(out, "designer", designer.into());
                field_str(out, "outcome", outcome);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::InboxFanout {
                seq,
                subscribers,
                delivered,
                dropped,
                dur_us,
            } => {
                field_u64(out, "seq", seq);
                field_u64(out, "subscribers", subscribers.into());
                field_u64(out, "delivered", delivered.into());
                field_u64(out, "dropped", dropped.into());
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::Recovery {
                ops,
                checkpoints,
                journal_bytes,
                truncated_bytes,
                faithful,
                dur_us,
            } => {
                field_u64(out, "ops", ops);
                field_u64(out, "checkpoints", checkpoints);
                field_u64(out, "journal_bytes", journal_bytes);
                field_u64(out, "truncated_bytes", truncated_bytes);
                field_bool(out, "faithful", faithful);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::Reconnect {
                designer,
                attempt,
                resumed_from,
                dur_us,
            } => {
                field_u64(out, "designer", designer.into());
                field_u64(out, "attempt", attempt.into());
                field_u64(out, "resumed_from", resumed_from);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::WireSkip { bytes } => {
                field_u64(out, "bytes", bytes);
            }
            TraceEvent::CompileDone {
                constraints,
                instructions,
                dur_us,
            } => {
                field_u64(out, "constraints", constraints.into());
                field_u64(out, "instructions", instructions);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::ParallelComponent {
                component,
                constraints,
                evaluations,
                waves,
                dur_us,
            } => {
                field_u64(out, "component", component.into());
                field_u64(out, "constraints", constraints.into());
                field_u64(out, "evaluations", evaluations);
                field_u64(out, "waves", waves.into());
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::Negotiation {
                seq,
                constraint,
                rounds,
                proposals,
                participants,
                outcome,
                dur_us,
            } => {
                field_u64(out, "seq", seq);
                field_str(out, "constraint", constraint);
                field_u64(out, "rounds", rounds.into());
                field_u64(out, "proposals", proposals.into());
                field_u64(out, "participants", participants.into());
                field_str(out, "outcome", outcome);
                field_u64(out, "dur_us", dur_us);
            }
            TraceEvent::RunSummary {
                operations,
                evaluations,
                spins,
                violations,
                completed,
            } => {
                field_u64(out, "operations", operations);
                field_u64(out, "evaluations", evaluations);
                field_u64(out, "spins", spins);
                field_u64(out, "violations", violations);
                field_bool(out, "completed", completed);
            }
        }
        out.push('}');
    }

    /// The event's JSON object as an owned string (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }
}

fn field_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    // u64 -> decimal without going through fmt machinery would be overkill
    // here; these paths only run when a trace sink is attached.
    out.push_str(&value.to_string());
}

fn field_bool(out: &mut String, key: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn field_str(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn events_serialize_with_type_tag_first() {
        let event = TraceEvent::PropagationWave {
            wave: 2,
            queue_len: 5,
            evaluations: 5,
            narrowed: 1,
            dur_us: 12,
        };
        assert_eq!(
            event.to_json(),
            "{\"t\":\"wave\",\"wave\":2,\"queue_len\":5,\"evaluations\":5,\"narrowed\":1,\"dur_us\":12}"
        );
    }

    #[test]
    fn string_fields_are_escaped() {
        let event = TraceEvent::Tick {
            tick: 0,
            designer: 1,
            outcome: "quo\"te",
            dur_us: 0,
        };
        assert!(event.to_json().contains("quo\\\"te"));
    }

    #[test]
    fn compiled_engine_events_serialize() {
        let compile = TraceEvent::CompileDone {
            constraints: 4,
            instructions: 31,
            dur_us: 9,
        };
        assert_eq!(
            compile.to_json(),
            "{\"t\":\"compile\",\"constraints\":4,\"instructions\":31,\"dur_us\":9}"
        );
        let component = TraceEvent::ParallelComponent {
            component: 1,
            constraints: 3,
            evaluations: 12,
            waves: 2,
            dur_us: 5,
        };
        assert_eq!(
            component.to_json(),
            "{\"t\":\"par_wave\",\"component\":1,\"constraints\":3,\"evaluations\":12,\
             \"waves\":2,\"dur_us\":5}"
        );
    }

    #[test]
    fn profile_events_carry_attribution_tags() {
        let cprof = TraceEvent::ConstraintProfile {
            name: "cap",
            evaluations: 7,
            conflict: true,
        };
        assert_eq!(
            cprof.to_json(),
            "{\"t\":\"cprof\",\"name\":\"cap\",\"evaluations\":7,\"conflict\":true}"
        );
        let pprof = TraceEvent::PropertyProfile {
            name: "lna.gain",
            narrowings: 3,
        };
        assert_eq!(
            pprof.to_json(),
            "{\"t\":\"pprof\",\"name\":\"lna.gain\",\"narrowings\":3}"
        );
        let violation = TraceEvent::Violation {
            seq: 4,
            constraint: "sum",
            cross: false,
        };
        assert_eq!(
            violation.to_json(),
            "{\"t\":\"violation\",\"seq\":4,\"constraint\":\"sum\",\"cross\":false}"
        );
    }
}
