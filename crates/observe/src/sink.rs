//! The [`MetricsSink`] trait and its in-process implementations.

use crate::histogram::{Histogram, SpanKind};
use crate::trace::{Counter, TraceEvent};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where instrumented hot paths send their counters and trace events.
///
/// Implementations must be thread-safe: the TeamSim engine and benches may
/// share one sink across threads. The `Debug` supertrait keeps structs that
/// embed an `Arc<dyn MetricsSink>` derivable.
///
/// ## Cost contract
///
/// Instrumented code is expected to guard *event construction* with
/// [`is_enabled`](MetricsSink::is_enabled) — building a [`TraceEvent`] and
/// formatting its fields must not happen when the method returns `false`.
/// Counter increments ([`incr`](MetricsSink::incr)) may be called
/// unconditionally; the no-op implementation compiles down to an indirect
/// call that immediately returns.
pub trait MetricsSink: fmt::Debug + Send + Sync {
    /// Whether this sink wants [`TraceEvent`]s. Hot paths skip building
    /// events entirely when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Adds `by` to `counter`.
    fn incr(&self, counter: Counter, by: u64);

    /// Records one structured event.
    fn record(&self, event: &TraceEvent<'_>);

    /// Records the duration of one timed span, in µs. The default is a
    /// no-op so counter-only sinks need not care; [`InMemorySink`]
    /// aggregates into one [`Histogram`] per [`SpanKind`]. Producers only
    /// time spans when [`is_enabled`](MetricsSink::is_enabled) is true (the
    /// clock reads ride along with event construction).
    fn time(&self, kind: SpanKind, dur_us: u64) {
        let _ = (kind, dur_us);
    }

    /// Makes everything recorded so far durable, best-effort. Producers
    /// call this at *degradation points* — moments (like a session's
    /// journal failing) that suggest the process may not live to a clean
    /// shutdown — so buffered telemetry is not lost with it. The default
    /// is a no-op; [`crate::JsonlSink`] runs its
    /// [`finish`](crate::JsonlSink::finish) (counters line + flush),
    /// deferring any I/O error as usual.
    fn flush(&self) {}
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn incr(&self, _counter: Counter, _by: u64) {}

    fn record(&self, _event: &TraceEvent<'_>) {}
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; Counter::COUNT],
}

// Manual impls: derived `Default` stops at 32-element arrays.
impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot {
            values: [0; Counter::COUNT],
        }
    }
}

impl CounterSnapshot {
    /// Builds a snapshot by asking `value` for every counter — the
    /// constructor used when a snapshot is reconstructed from an external
    /// representation (a parsed scrape exposition, a `stats_reply` frame).
    pub fn from_fn(mut value: impl FnMut(Counter) -> u64) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for c in Counter::ALL {
            out.values[c.index()] = value(c);
        }
        out
    }

    /// The value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Iterates `(counter, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|c| (*c, self.values[c.index()]))
    }

    /// The snapshot minus `earlier`, counter-wise (saturating) — the delta
    /// a phase contributed between two snapshots of the same sink.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for c in Counter::ALL {
            out.values[c.index()] =
                self.values[c.index()].saturating_sub(earlier.values[c.index()]);
        }
        out
    }

    /// Serializes the snapshot as a `{"t":"counters",...}` JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"t\":\"counters\"");
        for (counter, value) in self.iter() {
            out.push_str(",\"");
            out.push_str(counter.name());
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (counter, value) in self.iter() {
            writeln!(f, "{:<16} {value}", counter.name())?;
        }
        Ok(())
    }
}

/// Lock-free in-memory aggregation: one atomic per [`Counter`], one
/// [`Histogram`] per [`SpanKind`], events counted but not retained. The
/// right sink for benches and concurrency tests.
#[derive(Debug)]
pub struct InMemorySink {
    counters: [AtomicU64; Counter::COUNT],
    timings: [Histogram; SpanKind::COUNT],
    events: AtomicU64,
}

impl Default for InMemorySink {
    fn default() -> Self {
        InMemorySink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timings: std::array::from_fn(|_| Histogram::default()),
            events: AtomicU64::new(0),
        }
    }
}

impl InMemorySink {
    /// Creates a sink with all counters at zero.
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// The current value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Number of [`TraceEvent`]s recorded (the events themselves are not
    /// retained).
    pub fn events_recorded(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut snapshot = CounterSnapshot::default();
        for c in Counter::ALL {
            snapshot.values[c.index()] = self.get(c);
        }
        snapshot
    }

    /// The duration histogram of one span kind.
    pub fn histogram(&self, kind: SpanKind) -> &Histogram {
        &self.timings[kind.index()]
    }

    /// Resets every counter, histogram, and the event count to zero.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.timings {
            h.reset();
        }
        self.events.store(0, Ordering::Relaxed);
    }
}

impl MetricsSink for InMemorySink {
    fn incr(&self, counter: Counter, by: u64) {
        self.counters[counter.index()].fetch_add(by, Ordering::Relaxed);
    }

    fn record(&self, _event: &TraceEvent<'_>) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    fn time(&self, kind: SpanKind, dur_us: u64) {
        self.timings[kind.index()].record(dur_us);
    }
}

/// Fans every call out to several sinks (e.g. aggregate counters in memory
/// *and* stream a JSONL trace).
#[derive(Debug, Clone, Default)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn MetricsSink>>,
}

impl TeeSink {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn MetricsSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl MetricsSink for TeeSink {
    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }

    fn incr(&self, counter: Counter, by: u64) {
        for sink in &self.sinks {
            sink.incr(counter, by);
        }
    }

    fn record(&self, event: &TraceEvent<'_>) {
        for sink in &self.sinks {
            if sink.is_enabled() {
                sink.record(event);
            }
        }
    }

    fn time(&self, kind: SpanKind, dur_us: u64) {
        for sink in &self.sinks {
            sink.time(kind, dur_us);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let sink = NoopSink;
        assert!(!sink.is_enabled());
        sink.incr(Counter::Waves, 5);
        sink.record(&TraceEvent::Tick {
            tick: 0,
            designer: 0,
            outcome: "executed",
            dur_us: 0,
        });
    }

    #[test]
    fn in_memory_aggregates_and_snapshots() {
        let sink = InMemorySink::new();
        sink.incr(Counter::Evaluations, 10);
        sink.incr(Counter::Evaluations, 5);
        sink.incr(Counter::Spins, 1);
        let snap = sink.snapshot();
        assert_eq!(snap.get(Counter::Evaluations), 15);
        assert_eq!(snap.get(Counter::Spins), 1);
        assert_eq!(snap.get(Counter::Waves), 0);
        sink.incr(Counter::Evaluations, 1);
        let delta = sink.snapshot().since(&snap);
        assert_eq!(delta.get(Counter::Evaluations), 1);
        assert_eq!(delta.get(Counter::Spins), 0);
        sink.reset();
        assert_eq!(sink.get(Counter::Evaluations), 0);
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_all_counted() {
        const THREADS: usize = 8;
        const INCRS_PER_THREAD: u64 = 10_000;
        let sink = Arc::new(InMemorySink::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..INCRS_PER_THREAD {
                        sink.incr(Counter::Evaluations, 1);
                        // Half the threads also contend on a second counter
                        // and on the event path.
                        if i % 2 == 0 {
                            sink.incr(Counter::Waves, 2);
                            sink.record(&TraceEvent::Tick {
                                tick: 0,
                                designer: 0,
                                outcome: "executed",
                                dur_us: 0,
                            });
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
        let expected = THREADS as u64 * INCRS_PER_THREAD;
        assert_eq!(sink.get(Counter::Evaluations), expected);
        assert_eq!(sink.get(Counter::Waves), expected);
        assert_eq!(sink.events_recorded(), expected / 2);
    }

    #[test]
    fn in_memory_aggregates_span_timings() {
        let sink = InMemorySink::new();
        sink.time(SpanKind::Wave, 10);
        sink.time(SpanKind::Wave, 30);
        sink.time(SpanKind::Tick, 100);
        let waves = sink.histogram(SpanKind::Wave);
        assert_eq!(waves.count(), 2);
        assert_eq!(waves.max(), 30);
        assert_eq!(sink.histogram(SpanKind::Tick).sum(), 100);
        assert!(sink.histogram(SpanKind::Fanout).is_empty());
        sink.reset();
        assert!(sink.histogram(SpanKind::Wave).is_empty());
    }

    #[test]
    fn tee_forwards_span_timings() {
        let a = Arc::new(InMemorySink::new());
        let tee = TeeSink::new(vec![a.clone()]);
        tee.time(SpanKind::Operation, 7);
        assert_eq!(a.histogram(SpanKind::Operation).count(), 1);
        // The default implementation (e.g. NoopSink) discards timings.
        NoopSink.time(SpanKind::Operation, 7);
    }

    #[test]
    fn from_fn_reconstructs_a_snapshot_exactly() {
        let sink = InMemorySink::new();
        sink.incr(Counter::Operations, 3);
        sink.incr(Counter::SessionOps, 9);
        let original = sink.snapshot();
        let rebuilt = CounterSnapshot::from_fn(|c| original.get(c));
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn snapshot_serializes_every_counter() {
        let sink = InMemorySink::new();
        sink.incr(Counter::Waves, 2);
        let json = sink.snapshot().to_json();
        assert!(json.starts_with("{\"t\":\"counters\""));
        assert!(json.contains("\"waves\":2"));
        for counter in Counter::ALL {
            assert!(json.contains(counter.name()), "missing {}", counter.name());
        }
    }

    #[test]
    fn tee_fans_out_and_ors_enablement() {
        let a = Arc::new(InMemorySink::new());
        let b = Arc::new(InMemorySink::new());
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        assert!(tee.is_enabled());
        tee.incr(Counter::Operations, 2);
        tee.record(&TraceEvent::RunSummary {
            operations: 2,
            evaluations: 0,
            spins: 0,
            violations: 0,
            completed: true,
        });
        assert_eq!(a.get(Counter::Operations), 2);
        assert_eq!(b.get(Counter::Operations), 2);
        assert_eq!(a.events_recorded(), 1);
        let noops = TeeSink::new(vec![Arc::new(NoopSink) as Arc<dyn MetricsSink>]);
        assert!(!noops.is_enabled());
    }
}
