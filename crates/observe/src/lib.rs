//! # adpm-observe
//!
//! Observability layer for the ADPM reproduction: structured trace events
//! and aggregate counters emitted from the hot paths of the constraint
//! propagation engine ([`propagate`](https://docs.rs/adpm-constraint)) and
//! the TeamSim simulation loop, without either of those crates paying for
//! instrumentation when nobody is listening.
//!
//! The crate is deliberately dependency-free and speaks only in plain
//! integers, booleans, and `&str` so that every other workspace crate —
//! including the lowest-level `adpm-constraint` — can depend on it.
//!
//! ## The pieces
//!
//! * [`MetricsSink`] — the trait instrumented code writes to. Hot paths
//!   call [`MetricsSink::is_enabled`] once and skip event construction
//!   entirely when it returns `false`, so the no-op sink costs one virtual
//!   call per span.
//! * [`Counter`] — the closed set of aggregate counters (operations,
//!   constraint evaluations, propagation waves, spins, ...).
//! * [`TraceEvent`] — the structured spans: per-propagation-wave,
//!   per-propagation, per-operation, per-tick, notification fan-out, and
//!   run summary.
//! * [`NoopSink`] — ships with everything disabled; the default everywhere.
//! * [`InMemorySink`] — lock-free counter aggregation over atomics, for
//!   benches and tests.
//! * [`JsonlSink`] — serializes every event as one JSON object per line
//!   (see `docs/OBSERVABILITY.md` for the schema) for offline analysis and
//!   replay auditing.
//! * [`parse_trace`] / [`TraceLine`] — a minimal reader for the JSONL
//!   format, used by `adpm-core`'s replay auditing and by tests.
//! * [`Clock`] / [`MonotonicClock`] / [`ManualClock`] — injectable
//!   monotonic time for span durations; the manual clock keeps golden
//!   traces byte-deterministic.
//! * [`Histogram`] / [`SpanKind`] — log-bucketed duration capture per span
//!   kind, aggregated by [`InMemorySink`] via [`MetricsSink::time`].
//! * [`MetricsHub`] / [`Snapshot`] — live telemetry: a registry of
//!   per-session sinks plus a server-wide rollup, with cheap point-in-time
//!   snapshots, deltas, and a plaintext scrape exposition
//!   ([`write_exposition`] / [`parse_exposition`]).
//! * [`FlightRecorder`] — an always-on bounded ring of the most recent
//!   events (fixed memory, no I/O) for post-incident dumps on untraced
//!   servers.
//! * [`analyze`] — offline trace analysis: hot-spot attribution, timing
//!   rollups, λ=T vs λ=F comparison, and trace-to-trace regression diffs.
//!
//! ## Quick example
//!
//! ```
//! use adpm_observe::{Counter, InMemorySink, MetricsSink, SpanKind, TraceEvent};
//!
//! let sink = InMemorySink::new();
//! sink.incr(Counter::Waves, 3);
//! sink.record(&TraceEvent::PropagationDone {
//!     kind: "full",
//!     seeded: 9,
//!     waves: 3,
//!     evaluations: 17,
//!     narrowed: 2,
//!     conflicts: 0,
//!     fixpoint: true,
//!     dur_us: 120,
//! });
//! sink.time(SpanKind::Propagation, 120);
//! assert_eq!(sink.get(Counter::Waves), 3);
//! assert_eq!(sink.histogram(SpanKind::Propagation).max(), 120);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
mod clock;
mod histogram;
mod hub;
mod json;
mod jsonl;
mod recorder;
mod sink;
mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::{Histogram, SpanKind};
pub use hub::{
    parse_exposition, write_exposition, MetricsHub, Snapshot, SpanSummary, ROLLUP_SESSION,
};
pub use json::{escape_into, parse_object, JsonValue, TraceParseError};
pub use jsonl::{parse_trace, JsonlSink, TraceLine};
pub use recorder::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use sink::{CounterSnapshot, InMemorySink, MetricsSink, NoopSink, TeeSink};
pub use trace::{Counter, TraceEvent};
