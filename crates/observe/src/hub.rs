//! The live telemetry hub: per-session metrics registration, cheap
//! point-in-time snapshots, and the plaintext scrape exposition.
//!
//! A server hosting many concurrent design sessions needs each session's
//! counters and latency percentiles *separately* (who is loading the
//! box?) and a server-wide rollup (how loaded is the box?), both readable
//! at any moment without perturbing the sessions. [`MetricsHub`] holds one
//! [`InMemorySink`] per registered session plus one rollup sink; producers
//! tee into both, so the hot path stays what `InMemorySink` already is —
//! relaxed atomics, no locks, no clocks. Reading is pull-only:
//! [`MetricsHub::snapshot`] captures a [`Snapshot`] (every counter plus a
//! [`SpanSummary`] per span kind), and [`Snapshot::since`] subtracts two
//! captures so rates (ops/s between two polls) fall out of plain counter
//! deltas.
//!
//! The same snapshot renders as a Prometheus-style plaintext exposition
//! ([`write_exposition`]) for the server's scrape listener, and
//! [`parse_exposition`] reads that text back into per-session
//! [`CounterSnapshot`]s — the round trip is property-tested.

use crate::histogram::SpanKind;
use crate::sink::{CounterSnapshot, InMemorySink};
use crate::trace::Counter;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The session label under which the server-wide rollup is exposed. `*`
/// cannot collide with a real session: server session names are
/// restricted to `[A-Za-z0-9_-]`.
pub const ROLLUP_SESSION: &str = "*";

/// Aggregate view of one span-duration histogram at capture time.
///
/// Percentiles are the histogram's bucket-bound answers (see
/// [`Histogram::percentile`](crate::Histogram::percentile)) — exact for
/// equal bucket occupancy, ≤2× relative error otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples, µs.
    pub sum: u64,
    /// Exact maximum sample, µs.
    pub max: u64,
    /// Median, µs (bucket upper bound).
    pub p50: u64,
    /// 90th percentile, µs (bucket upper bound).
    pub p90: u64,
    /// 99th percentile, µs (bucket upper bound).
    pub p99: u64,
}

/// A point-in-time capture of one sink: every counter, the recorded-event
/// total, and a [`SpanSummary`] per [`SpanKind`].
///
/// Capturing is read-only and cheap (a relaxed load per counter/bucket);
/// it never blocks the producers writing into the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Every counter at capture time.
    pub counters: CounterSnapshot,
    /// [`TraceEvent`](crate::TraceEvent)s recorded at capture time.
    pub events: u64,
    spans: [SpanSummary; SpanKind::COUNT],
}

impl Snapshot {
    /// Captures `sink` right now.
    pub fn capture(sink: &InMemorySink) -> Snapshot {
        let mut spans = [SpanSummary::default(); SpanKind::COUNT];
        for kind in SpanKind::ALL {
            let h = sink.histogram(kind);
            spans[kind.index()] = SpanSummary {
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                p50: h.p50(),
                p90: h.p90(),
                p99: h.p99(),
            };
        }
        Snapshot {
            counters: sink.snapshot(),
            events: sink.events_recorded(),
            spans,
        }
    }

    /// The summary of one span kind.
    pub fn span(&self, kind: SpanKind) -> SpanSummary {
        self.spans[kind.index()]
    }

    /// The delta this snapshot adds over `earlier` (two captures of the
    /// same sink): counters, `events`, and span `count`/`sum` subtract
    /// (saturating); span `max`/percentiles stay the *cumulative* values
    /// of `self` — quantiles are not subtractable from summaries, and the
    /// cumulative answer is the conservative one a monitor wants.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut spans = self.spans;
        for kind in SpanKind::ALL {
            let before = earlier.spans[kind.index()];
            let span = &mut spans[kind.index()];
            span.count = span.count.saturating_sub(before.count);
            span.sum = span.sum.saturating_sub(before.sum);
        }
        Snapshot {
            counters: self.counters.since(&earlier.counters),
            events: self.events.saturating_sub(earlier.events),
            spans,
        }
    }
}

/// A registry of per-session [`InMemorySink`]s plus a server-wide rollup.
///
/// The hub owns no threads and does no I/O; it only hands out sinks and
/// captures snapshots. The intended wiring (what `adpm-collab`'s server
/// does): every session's producer tees into `register(name)`'s sink *and*
/// [`rollup`](MetricsHub::rollup), so per-session views and the rollup stay
/// consistent by construction. Registration takes a short mutex on the
/// name table only — never on the recording path.
#[derive(Debug, Default)]
pub struct MetricsHub {
    sessions: Mutex<BTreeMap<String, Arc<InMemorySink>>>,
    rollup: Arc<InMemorySink>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Arc<InMemorySink>>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The server-wide rollup sink (tee it into every producer).
    pub fn rollup(&self) -> Arc<InMemorySink> {
        self.rollup.clone()
    }

    /// Returns the sink registered under `name`, creating a fresh one on
    /// first registration. Re-registering an existing name returns the
    /// *same* sink, so concurrent attach races cannot split a session's
    /// counters across two sinks.
    pub fn register(&self, name: &str) -> Arc<InMemorySink> {
        self.lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(InMemorySink::new()))
            .clone()
    }

    /// Removes `name` from the hub. The sink itself survives as long as
    /// producers hold it; only the hub's view forgets it. Returns whether
    /// the name was registered.
    pub fn deregister(&self, name: &str) -> bool {
        self.lock().remove(name).is_some()
    }

    /// The sink registered under `name`, if any.
    pub fn session(&self, name: &str) -> Option<Arc<InMemorySink>> {
        self.lock().get(name).cloned()
    }

    /// Registered session names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures the session registered under `name`.
    pub fn snapshot(&self, name: &str) -> Option<Snapshot> {
        self.session(name).map(|sink| Snapshot::capture(&sink))
    }

    /// Captures every registered session, sorted by name.
    pub fn snapshot_all(&self) -> Vec<(String, Snapshot)> {
        // Clone the Arcs out first: capturing must not hold the name-table
        // lock (captures scan every counter and histogram bucket).
        let sinks: Vec<(String, Arc<InMemorySink>)> = self
            .lock()
            .iter()
            .map(|(name, sink)| (name.clone(), sink.clone()))
            .collect();
        sinks
            .into_iter()
            .map(|(name, sink)| (name, Snapshot::capture(&sink)))
            .collect()
    }

    /// Captures the server-wide rollup.
    pub fn rollup_snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.rollup)
    }
}

/// Appends the Prometheus-style plaintext exposition of one session's
/// snapshot to `out`: one `adpm_<counter>{session="<name>"} <value>` line
/// per counter, an `adpm_events` line, and per-span
/// `adpm_span_count`/`adpm_span_sum_us`/`adpm_span_us{...,quantile=…}`
/// lines for every non-empty span. Use [`ROLLUP_SESSION`] as the name for
/// the server-wide rollup.
pub fn write_exposition(out: &mut String, session: &str, snapshot: &Snapshot) {
    use std::fmt::Write;
    for (counter, value) in snapshot.counters.iter() {
        let _ = writeln!(
            out,
            "adpm_{}{{session=\"{session}\"}} {value}",
            counter.name()
        );
    }
    let _ = writeln!(
        out,
        "adpm_events{{session=\"{session}\"}} {}",
        snapshot.events
    );
    for kind in SpanKind::ALL {
        let span = snapshot.span(kind);
        if span.count == 0 {
            continue;
        }
        let name = kind.name();
        let _ = writeln!(
            out,
            "adpm_span_count{{session=\"{session}\",span=\"{name}\"}} {}",
            span.count
        );
        let _ = writeln!(
            out,
            "adpm_span_sum_us{{session=\"{session}\",span=\"{name}\"}} {}",
            span.sum
        );
        for (quantile, value) in [("0.5", span.p50), ("0.9", span.p90), ("0.99", span.p99)] {
            let _ = writeln!(
                out,
                "adpm_span_us{{session=\"{session}\",span=\"{name}\",quantile=\"{quantile}\"}} {value}",
            );
        }
    }
}

/// Parses a plaintext exposition (as produced by [`write_exposition`],
/// possibly concatenated over several sessions) back into one
/// [`CounterSnapshot`] per session label, in label order. Lines that are
/// not `adpm_<counter>` samples — comments, `adpm_events`, the span
/// metrics, anything malformed — are skipped, the tolerant posture a
/// scrape consumer needs.
pub fn parse_exposition(text: &str) -> BTreeMap<String, CounterSnapshot> {
    let mut per_session: BTreeMap<String, BTreeMap<usize, u64>> = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("adpm_") else {
            continue;
        };
        let Some(brace) = rest.find('{') else {
            continue;
        };
        let metric = &rest[..brace];
        let Some(counter) = Counter::ALL.iter().find(|c| c.name() == metric) else {
            continue;
        };
        let Some(close) = rest.find('}') else {
            continue;
        };
        let session = rest[brace + 1..close]
            .split(',')
            .find_map(|label| label.strip_prefix("session=\""))
            .and_then(|v| v.strip_suffix('"'));
        let (Some(session), Some(value)) = (
            session,
            rest[close + 1..].trim().parse::<u64>().ok(),
        ) else {
            continue;
        };
        per_session
            .entry(session.to_string())
            .or_default()
            .insert(counter.index(), value);
    }
    per_session
        .into_iter()
        .map(|(session, values)| {
            let snapshot = CounterSnapshot::from_fn(|c| {
                values.get(&c.index()).copied().unwrap_or(0)
            });
            (session, snapshot)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MetricsSink;

    #[test]
    fn register_is_idempotent_and_rollup_is_shared() {
        let hub = MetricsHub::new();
        let a = hub.register("s1");
        let b = hub.register("s1");
        assert!(Arc::ptr_eq(&a, &b), "one session, one sink");
        a.incr(Counter::SessionOps, 3);
        assert_eq!(hub.snapshot("s1").unwrap().counters.get(Counter::SessionOps), 3);
        assert!(hub.snapshot("nope").is_none());
        hub.rollup().incr(Counter::Operations, 2);
        assert_eq!(hub.rollup_snapshot().counters.get(Counter::Operations), 2);
        assert_eq!(hub.names(), vec!["s1".to_string()]);
        assert!(hub.deregister("s1"));
        assert!(!hub.deregister("s1"));
        assert!(hub.is_empty());
        // The deregistered sink keeps working for whoever still holds it.
        a.incr(Counter::SessionOps, 1);
        assert_eq!(a.get(Counter::SessionOps), 4);
    }

    #[test]
    fn snapshot_captures_span_summaries_and_deltas() {
        let sink = InMemorySink::new();
        sink.incr(Counter::SessionOps, 5);
        sink.time(SpanKind::Session, 100);
        sink.time(SpanKind::Session, 300);
        let first = Snapshot::capture(&sink);
        let session = first.span(SpanKind::Session);
        assert_eq!(session.count, 2);
        assert_eq!(session.sum, 400);
        assert_eq!(session.max, 300);
        assert!(session.p99 >= 300);
        assert_eq!(first.span(SpanKind::Wave), SpanSummary::default());

        sink.incr(Counter::SessionOps, 2);
        sink.time(SpanKind::Session, 50);
        let second = Snapshot::capture(&sink);
        let delta = second.since(&first);
        assert_eq!(delta.counters.get(Counter::SessionOps), 2);
        assert_eq!(delta.span(SpanKind::Session).count, 1);
        assert_eq!(delta.span(SpanKind::Session).sum, 50);
        // max/percentiles stay cumulative in a delta.
        assert_eq!(delta.span(SpanKind::Session).max, 300);
    }

    /// Satellite coverage: sessions registering, deregistering, and being
    /// snapshot concurrently — the create/detach churn a multi-tenant
    /// server produces — must never lose a count or panic.
    #[test]
    fn concurrent_registration_churn_and_snapshots_are_safe() {
        const WRITERS: usize = 4;
        const OPS: u64 = 2_000;
        let hub = Arc::new(MetricsHub::new());
        let writers: Vec<_> = (0..WRITERS)
            .map(|i| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let name = format!("s{i}");
                    for n in 0..OPS {
                        // Periodically drop and re-register the session,
                        // like a detach/create cycle. The sink handle keeps
                        // counting across deregistration; re-register under
                        // churn may mint a fresh sink, so totals split —
                        // which is why writers re-fetch the registered sink.
                        if n % 128 == 0 {
                            hub.deregister(&name);
                        }
                        let sink = hub.register(&name);
                        sink.incr(Counter::SessionOps, 1);
                        sink.time(SpanKind::Session, n % 64);
                    }
                })
            })
            .collect();
        let reader = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                for _ in 0..200 {
                    for (_, snapshot) in hub.snapshot_all() {
                        reads += snapshot.counters.get(Counter::SessionOps);
                    }
                    hub.rollup_snapshot();
                    std::thread::yield_now();
                }
                reads
            })
        };
        for writer in writers {
            writer.join().expect("writer panicked");
        }
        reader.join().expect("reader panicked");
        // After the churn settles every session is registered and its
        // final sink holds the ops recorded since its last re-creation.
        assert_eq!(hub.len(), WRITERS);
        for (_, snapshot) in hub.snapshot_all() {
            let ops = snapshot.counters.get(Counter::SessionOps);
            assert!(ops > 0 && ops <= OPS, "ops = {ops}");
            assert_eq!(snapshot.span(SpanKind::Session).count, ops);
        }
    }

    #[test]
    fn exposition_round_trips_counters_and_skips_noise() {
        let sink = InMemorySink::new();
        sink.incr(Counter::Operations, 12);
        sink.incr(Counter::InboxDropped, 4);
        sink.time(SpanKind::Session, 90);
        let snapshot = Snapshot::capture(&sink);
        let mut text = String::from("# scraped from a test\n");
        write_exposition(&mut text, "team-a", &snapshot);
        write_exposition(&mut text, ROLLUP_SESSION, &snapshot);
        text.push_str("garbage line\nadpm_unknown_metric{session=\"x\"} 1\n");
        assert!(text.contains("adpm_operations{session=\"team-a\"} 12"));
        assert!(text.contains("adpm_span_us{session=\"team-a\",span=\"session\",quantile=\"0.99\"}"));
        let parsed = parse_exposition(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["team-a"], snapshot.counters);
        assert_eq!(parsed[ROLLUP_SESSION], snapshot.counters);
    }
}
