//! Minimal JSON support for the flat trace schema.
//!
//! The JSONL trace format uses only flat objects whose values are numbers,
//! booleans, strings, or null, so a full JSON implementation would be dead
//! weight (and the build environment has no serde). This module provides
//! exactly what the schema needs: string escaping for the writer and a
//! single-object parser for the reader.

use std::fmt;

/// A value in a flat trace object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number. Counters fit f64 exactly up to 2^53, far beyond
    /// anything a simulation run produces.
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
}

impl JsonValue {
    /// The value as a `u64` if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number within the trace (0 when parsing a bare object).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Appends `value` to `out` with JSON string escaping applied.
///
/// This is the writer-side primitive of the flat JSONL schema; it is public
/// so other line-oriented protocols in the workspace (e.g. the collaboration
/// wire format) can produce strings that [`parse_object`] round-trips.
pub fn escape_into(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parses one flat JSON object into `(key, value)` pairs, in order.
/// Nested objects and arrays are rejected — the trace schema is flat.
///
/// `line` is the 1-based line number reported in errors (pass 0 when
/// parsing a bare object outside a trace file).
///
/// # Errors
///
/// Returns a [`TraceParseError`] carrying `line` and a column-annotated
/// message when `text` is not exactly one flat JSON object: malformed
/// syntax, nested objects/arrays, or trailing characters after the
/// closing brace.
pub fn parse_object(
    text: &str,
    line: usize,
) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line,
    };
    parser.skip_ws();
    parser.expect(b'{')?;
    let mut fields = Vec::new();
    parser.skip_ws();
    if parser.peek() == Some(b'}') {
        parser.pos += 1;
    } else {
        loop {
            parser.skip_ws();
            let key = parser.string()?;
            parser.skip_ws();
            parser.expect(b':')?;
            parser.skip_ws();
            let value = parser.value()?;
            fields.push((key, value));
            parser.skip_ws();
            match parser.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(parser.error(format!(
                        "expected `,` or `}}`, found {}",
                        describe(other)
                    )))
                }
            }
        }
    }
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after object".into()));
    }
    Ok(fields)
}

fn describe(byte: Option<u8>) -> String {
    match byte {
        Some(b) => format!("`{}`", b as char),
        None => "end of line".into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl Parser<'_> {
    fn error(&self, message: String) -> TraceParseError {
        TraceParseError {
            line: self.line,
            message: format!("{message} (column {})", self.pos + 1),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), TraceParseError> {
        match self.next() {
            Some(b) if b == byte => Ok(()),
            other => Err(self.error(format!(
                "expected `{}`, found {}",
                byte as char,
                describe(other)
            ))),
        }
    }

    fn value(&mut self) -> Result<JsonValue, TraceParseError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err(self.error("nested values are not part of the trace schema".into())),
            Some(_) => self.number(),
            None => Err(self.error("expected a value, found end of line".into())),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, TraceParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, TraceParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.error(format!("`{text}` is not a number")))
    }

    fn string(&mut self) -> Result<String, TraceParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.error("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| self.error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error(format!("bad \\u escape `{hex}`")))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape outside BMP".into()))?,
                        );
                    }
                    other => {
                        return Err(
                            self.error(format!("unknown escape {}", describe(other)))
                        )
                    }
                },
                Some(byte) => {
                    // Re-assemble multi-byte UTF-8 sequences: back up and
                    // take the full char from the source slice.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                            .map_err(|_| self.error("invalid UTF-8 in string".into()))?;
                        let ch = rest.chars().next().expect("non-empty");
                        out.push(ch);
                        self.pos += ch.len_utf8() - 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f λ";
        let mut encoded = String::from("{\"k\":\"");
        escape_into(&mut encoded, nasty);
        encoded.push_str("\"}");
        let fields = parse_object(&encoded, 1).expect("valid");
        assert_eq!(fields, vec![("k".into(), JsonValue::Str(nasty.into()))]);
    }

    #[test]
    fn parses_all_value_kinds() {
        let fields = parse_object(
            "{\"a\":1, \"b\":-2.5, \"c\":true, \"d\":false, \"e\":null, \"f\":\"x\"}",
            1,
        )
        .expect("valid");
        assert_eq!(fields[0].1.as_u64(), Some(1));
        assert_eq!(fields[1].1, JsonValue::Num(-2.5));
        assert_eq!(fields[2].1.as_bool(), Some(true));
        assert_eq!(fields[3].1.as_bool(), Some(false));
        assert_eq!(fields[4].1, JsonValue::Null);
        assert_eq!(fields[5].1.as_str(), Some("x"));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_object("{\"a\":{}}", 1).is_err());
        assert!(parse_object("{\"a\":[1]}", 1).is_err());
        assert!(parse_object("{\"a\":1} extra", 1).is_err());
        assert!(parse_object("{\"a\"}", 1).is_err());
        assert!(parse_object("", 1).is_err());
        let err = parse_object("{\"a\":wat}", 3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn empty_object_is_fine() {
        assert_eq!(parse_object("{}", 1).expect("valid"), vec![]);
    }
}
