//! The flight recorder: a bounded, always-on ring buffer of recent trace
//! events, for diagnosing incidents on servers that were not tracing.
//!
//! A long-running `adpm serve` usually runs untraced — full JSONL tracing
//! of every session forever is not viable. But when a session misbehaves,
//! the question is always "what were the last N things it did?". The
//! [`FlightRecorder`] answers exactly that: it implements
//! [`MetricsSink`] so it can be teed next to a session's real sink, keeps
//! the last `capacity` events as pre-serialized JSON lines (events borrow
//! their strings, so they are rendered at record time), and costs fixed
//! memory and zero I/O. Dumps happen over the wire (`dump` frame) or on
//! engine panic — never on the hot path.

use crate::sink::MetricsSink;
use crate::trace::{Counter, TraceEvent};
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default ring capacity: enough to cover a burst of fan-out around an
/// incident (~64 KiB at typical event sizes) while staying trivially
/// affordable per session.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct Ring {
    /// 1-based sequence number of the most recently recorded event.
    seq: u64,
    lines: VecDeque<(u64, String)>,
}

/// A bounded ring buffer of the most recent [`TraceEvent`]s, stored as
/// serialized JSON lines. Always on, fixed memory, no I/O.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().lines.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (1-based sequence of the newest).
    pub fn recorded(&self) -> u64 {
        self.lock().seq
    }

    /// The retained JSON lines, oldest first.
    pub fn dump(&self) -> Vec<String> {
        self.lock()
            .lines
            .iter()
            .map(|(_, line)| line.clone())
            .collect()
    }

    /// The retained `(sequence, line)` pairs, oldest first. Sequence
    /// numbers are 1-based over the recorder's whole lifetime, so gaps
    /// before the first pair show how much history the ring has shed.
    pub fn dump_indexed(&self) -> Vec<(u64, String)> {
        self.lock().lines.iter().cloned().collect()
    }
}

impl MetricsSink for FlightRecorder {
    fn incr(&self, _counter: Counter, _by: u64) {}

    fn record(&self, event: &TraceEvent<'_>) {
        // Serialize outside the lock: events borrow from the caller and
        // cannot be stored, and rendering is the expensive part.
        let line = event.to_json();
        let mut ring = self.lock();
        ring.seq += 1;
        let seq = ring.seq;
        ring.lines.push_back((seq, line));
        while ring.lines.len() > self.capacity {
            ring.lines.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(n: u64) -> TraceEvent<'static> {
        TraceEvent::Tick {
            tick: n,
            designer: 0,
            outcome: "executed",
            dur_us: 10,
        }
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_events_in_order() {
        let recorder = FlightRecorder::new(4);
        assert!(recorder.is_empty());
        for n in 1..=10 {
            recorder.record(&tick(n));
        }
        assert_eq!(recorder.recorded(), 10);
        assert_eq!(recorder.len(), 4);
        let indexed = recorder.dump_indexed();
        assert_eq!(
            indexed.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "the ring keeps exactly the newest `capacity` events, in order"
        );
        for ((_, line), n) in indexed.iter().zip(7u64..) {
            assert_eq!(*line, tick(n).to_json());
        }
        assert_eq!(recorder.dump().len(), 4);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(&tick(1));
        recorder.record(&tick(2));
        assert_eq!(recorder.dump_indexed(), vec![(2, tick(2).to_json())]);
    }

    #[test]
    fn recorder_is_always_enabled_and_counters_are_ignored() {
        let recorder = FlightRecorder::default();
        assert_eq!(recorder.capacity(), DEFAULT_FLIGHT_CAPACITY);
        assert!(recorder.is_enabled());
        recorder.incr(Counter::Operations, 5);
        assert_eq!(recorder.recorded(), 0, "counters do not occupy the ring");
    }
}
