//! Injectable monotonic clocks for span timing.
//!
//! Instrumented hot paths never call [`std::time::Instant`] directly; they
//! take a [`Clock`] so that production code gets real wall-clock spans
//! ([`MonotonicClock`]) while tests and golden traces get byte-deterministic
//! durations ([`ManualClock`]). A clock reports *microseconds since an
//! arbitrary fixed origin* — only differences between two readings are
//! meaningful.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic microsecond clock.
///
/// `now_us` must be monotone non-decreasing within one clock instance; the
/// origin is arbitrary, so only deltas are meaningful. Implementations must
/// be thread-safe — one clock may be shared by every instrumented layer of
/// a run.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Microseconds elapsed since this clock's (arbitrary) origin.
    fn now_us(&self) -> u64;
}

/// The production clock: [`Instant`]-backed, origin fixed at first use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonotonicClock;

impl MonotonicClock {
    /// Creates the real clock.
    pub fn new() -> Self {
        MonotonicClock
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        let origin = *ORIGIN.get_or_init(Instant::now);
        Instant::now().duration_since(origin).as_micros() as u64
    }
}

/// A deterministic clock for tests and golden traces.
///
/// Every [`now_us`](Clock::now_us) call returns the current reading and
/// then advances it by a fixed step, so a span's duration equals the number
/// of clock reads between its start and end times a constant — a pure
/// function of the code path, independent of the machine. Two identical
/// runs therefore produce byte-identical `dur_us` fields.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock starting at 0 that advances by 1 µs per reading.
    pub fn new() -> Self {
        ManualClock::with_step(0, 1)
    }

    /// A clock starting at `start` that advances by `step` µs per reading.
    pub fn with_step(start: u64, step: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start),
            step,
        }
    }

    /// Advances the clock by `by` µs without consuming a reading.
    pub fn advance(&self, by: u64) {
        self.now.fetch_add(by, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute reading.
    pub fn set(&self, value: u64) {
        self.now.store(value, Ordering::Relaxed);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_steps_per_reading() {
        let clock = ManualClock::with_step(100, 5);
        assert_eq!(clock.now_us(), 100);
        assert_eq!(clock.now_us(), 105);
        clock.advance(1_000);
        assert_eq!(clock.now_us(), 1_110);
        clock.set(7);
        assert_eq!(clock.now_us(), 7);
    }

    #[test]
    fn manual_clock_default_steps_by_one() {
        let clock = ManualClock::default();
        assert_eq!(clock.now_us(), 0);
        assert_eq!(clock.now_us(), 1);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(MonotonicClock::new()), Box::new(ManualClock::new())];
        for clock in &clocks {
            let _ = clock.now_us();
        }
    }
}
