//! Property-based test of the scrape exposition round trip: the plaintext
//! that `write_exposition` emits for any snapshot must re-parse (via
//! `parse_exposition`) to exactly the originating `CounterSnapshot`, for
//! any session name and any counter values, and regardless of interleaved
//! noise lines — the contract the server's scrape listener and
//! `bench_collab`'s self-scrape both lean on.

use adpm_observe::{
    parse_exposition, write_exposition, Counter, InMemorySink, MetricsSink, Snapshot, SpanKind,
    ROLLUP_SESSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// A valid session name: 1–16 characters of the server's name alphabet.
const SESSION_NAME: &str = "[A-Za-z0-9_-]{1,16}";

/// Builds a snapshot whose counters are exactly `values` (index-aligned
/// with `Counter::ALL`) and which carries some span samples, by driving a
/// fresh sink — `Snapshot`'s fields beyond `counters`/`events` are
/// deliberately not constructible by hand.
fn snapshot_with(values: &[u64], spans: &[u64]) -> Snapshot {
    let sink = InMemorySink::new();
    for (counter, value) in Counter::ALL.iter().zip(values) {
        sink.incr(*counter, *value);
    }
    for (kind, dur) in SpanKind::ALL.iter().cycle().zip(spans) {
        sink.time(*kind, *dur);
    }
    Snapshot::capture(&sink)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One session's exposition re-parses to its exact `CounterSnapshot`.
    #[test]
    fn exposition_round_trips_to_the_originating_snapshot(
        name in SESSION_NAME,
        values in vec(0u64..u64::MAX / 2, Counter::COUNT..Counter::COUNT + 1),
        spans in vec(0u64..1_000_000, 0..8),
    ) {
        let snapshot = snapshot_with(&values, &spans);
        let mut text = String::new();
        write_exposition(&mut text, &name, &snapshot);
        let parsed = parse_exposition(&text);
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[&name], snapshot.counters);
    }

    /// Multiple sessions concatenated into one scrape body — the shape the
    /// server's listener actually emits — all survive, even with comment
    /// and garbage lines interleaved.
    #[test]
    fn concatenated_sessions_parse_independently(
        name in SESSION_NAME,
        a in vec(0u64..1 << 40, Counter::COUNT..Counter::COUNT + 1),
        b in vec(0u64..1 << 40, Counter::COUNT..Counter::COUNT + 1),
    ) {
        let first = snapshot_with(&a, &[17]);
        let second = snapshot_with(&b, &[]);
        let mut text = String::from("# adpm scrape\n");
        write_exposition(&mut text, &name, &first);
        text.push_str("not a metric line\n");
        write_exposition(&mut text, ROLLUP_SESSION, &second);
        let parsed = parse_exposition(&text);
        // `name` can never collide with the rollup label: `*` is not in
        // the session-name alphabet.
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(parsed[&name], first.counters);
        prop_assert_eq!(parsed[ROLLUP_SESSION], second.counters);
    }
}
