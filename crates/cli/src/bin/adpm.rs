//! The `adpm` binary: a thin shell around [`adpm_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match adpm_cli::dispatch(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("adpm: {error}");
            if matches!(error, adpm_cli::CliError::Usage(_)) {
                eprintln!("\n{}", adpm_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
