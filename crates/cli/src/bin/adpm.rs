//! The `adpm` binary: a thin shell around [`adpm_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match adpm_cli::dispatch(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            // Classify for scripts: retryable transport failures (75) are
            // worth retrying verbatim; fatal protocol/validation failures
            // (65) are not.
            if error.is_retryable() {
                eprintln!("adpm: retryable transport failure: {error}");
            } else if matches!(error, adpm_cli::CliError::Wire(_)) {
                eprintln!("adpm: fatal: {error}");
            } else {
                eprintln!("adpm: {error}");
            }
            if matches!(error, adpm_cli::CliError::Usage(_)) {
                eprintln!("\n{}", adpm_cli::USAGE);
            }
            ExitCode::from(error.exit_code())
        }
    }
}
