//! # adpm-cli
//!
//! The `adpm` command-line tool: author a design scenario in DDDL, check
//! it, simulate it under either management mode, compare the modes, and
//! explain conflicts — the workflows a team evaluating Active Design
//! Process Management would run first.
//!
//! ```console
//! $ adpm check my-chip.dddl          # compile + propagate + feasibility report
//! $ adpm run my-chip.dddl --mode adpm --seed 7
//! $ adpm compare my-chip.dddl --seeds 30
//! $ adpm explain my-chip.dddl --bind rx.P-front=150 --bind rx.P-ser=100
//! $ adpm fmt my-chip.dddl            # normalized pretty-printed DDDL
//! $ adpm builtin receiver            # print an embedded paper scenario
//! $ adpm serve my-chip.dddl          # host a live collaboration session
//! $ adpm client 127.0.0.1:4000 --designer 1 --subscribe
//! $ adpm submit 127.0.0.1:4000 --designer 0 --problem fe --assign rx.P-front=150
//! ```
//!
//! Every subcommand is a library function returning the text it would
//! print, so the whole surface is unit-testable; `src/bin/adpm.rs` is a
//! thin argument-parsing shell.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use adpm_collab::{
    recover, run_concurrent_dpm_with, run_concurrent_remote, CollabClient, CollabServer,
    DiskFaultInjector, FaultInjector, FaultPlan, Frame, FsyncPolicy, JournalConfig, JournalWriter,
    NegotiationConfig, ServerOptions, SessionFactory, SessionOptions, WireError, WireOp,
};
use adpm_constraint::{
    explain_all_violations, propagate, NetworkError, PropagationConfig, PropagationEngine,
    PropagationKind, Value,
};
use adpm_core::{state_fingerprint, DesignProcessManager, DpmConfig, ManagementMode};
use adpm_dddl::{compile_source, parse, to_source, CompiledScenario};
use adpm_observe::analyze::{analyze_trace, diff_traces, render_comparison, DiffThresholds};
use adpm_observe::{parse_trace, Counter, InMemorySink, JsonlSink, MetricsSink, TeeSink};
use adpm_teamsim::{run_once, run_once_with_sink, Batch, NegotiationPolicy, SimulationConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Command-line usage problem (unknown flag, missing argument, ...).
    Usage(String),
    /// The scenario file could not be read.
    Io(std::io::Error),
    /// The scenario failed to lex/parse/compile.
    Dddl(adpm_dddl::DddlError),
    /// The operation journal could not be recovered or opened.
    Journal(adpm_collab::JournalError),
    /// A `--bind` value was rejected by the network.
    Network(adpm_constraint::NetworkError),
    /// A trace file is not schema-valid JSONL.
    Trace(adpm_observe::TraceParseError),
    /// `diff-trace` found at least one regression; the payload is the
    /// rendered diff report. Mapped to a non-zero exit by the binary, so
    /// CI gates can use `adpm diff-trace` directly.
    Regression(String),
    /// A collaboration connection failed at the wire-protocol level, or a
    /// `client`/`submit` expectation (like `--expect-events`) was not met.
    Wire(WireError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "cannot read scenario: {e}"),
            CliError::Dddl(e) => write!(f, "{e}"),
            CliError::Journal(e) => write!(f, "journal error: {e}"),
            CliError::Network(e) => write!(f, "{e}"),
            CliError::Trace(e) => write!(f, "invalid trace: {e}"),
            CliError::Regression(report) => write!(f, "{report}"),
            CliError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Whether retrying the same invocation can plausibly succeed —
    /// transport-level failures (connection refused/reset, timeouts), as
    /// opposed to validation or protocol errors that will fail again.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CliError::Wire(e) if e.is_retryable())
    }

    /// sysexits-style process exit code: 75 (`EX_TEMPFAIL`) for retryable
    /// transport failures, 65 (`EX_DATAERR`) for fatal wire/validation
    /// failures, 2 for usage errors, 1 for everything else. Scripts retry
    /// on 75 and give up on 65.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Wire(e) if e.is_retryable() => 75,
            CliError::Wire(_) => 65,
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl From<adpm_observe::TraceParseError> for CliError {
    fn from(e: adpm_observe::TraceParseError) -> Self {
        CliError::Trace(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<adpm_dddl::DddlError> for CliError {
    fn from(e: adpm_dddl::DddlError) -> Self {
        CliError::Dddl(e)
    }
}

impl From<adpm_constraint::NetworkError> for CliError {
    fn from(e: adpm_constraint::NetworkError) -> Self {
        CliError::Network(e)
    }
}

impl From<adpm_collab::JournalError> for CliError {
    fn from(e: adpm_collab::JournalError) -> Self {
        CliError::Journal(e)
    }
}

impl From<WireError> for CliError {
    fn from(e: WireError) -> Self {
        CliError::Wire(e)
    }
}

/// The usage text printed by `adpm help` (and on usage errors).
pub const USAGE: &str = "\
adpm — Active Design Process Management (DAC 2001 reproduction)

USAGE:
    adpm <command> [options]

COMMANDS:
    check   <file.dddl>                    compile, propagate, report feasibility
    run     <file.dddl> [--mode adpm|conventional] [--seed N] [--max-ops N]
            [--propagation full|incremental]
            [--engine interp|compiled|compiled-parallel]
            [--csv] [--trace FILE] [--metrics]
            [--concurrent] [--turn-barrier] [--remote] [--fault-plan PLAN]
            [--negotiate]
                                           simulate one TeamSim run
                                           (--propagation picks the DCM path:
                                            full re-propagation after every
                                            operation, or incremental dirty-set
                                            propagation; --engine picks the
                                            revision engine — AST interpreter,
                                            compiled flat interval programs, or
                                            compiled + parallel across
                                            connected components; see
                                            docs/PERFORMANCE.md; --csv prints the
                                            per-operation table, --trace streams
                                            a JSONL event trace to FILE,
                                            --metrics appends the aggregate
                                            counter totals; --concurrent runs
                                            designers as real threads against a
                                            collaboration session, and
                                            --turn-barrier makes that run a
                                            deterministic round-robin;
                                            --negotiate — implies
                                            --concurrent — resolves each
                                            new conflict by a bounded
                                            viewpoint negotiation among
                                            the affected designers
                                            instead of backtracking)
    compare <file.dddl> [--seeds N]        both modes over N seeds (default 20)
    analyze <trace.jsonl> [--json] [--vs other.jsonl]
                                           profile a JSONL trace: totals,
                                           constraint/property hot-spots,
                                           designer profiles, span timings
                                           (--json emits machine-readable
                                           JSONL, --vs prints a side-by-side
                                           λ=T vs λ=F style comparison)
    diff-trace <a.jsonl> <b.jsonl> [--abs N] [--rel F]
                                           compare b against baseline a over
                                           the paper's statistics; exits
                                           non-zero when b regresses beyond
                                           a + max(abs, a*rel)
    explain <file.dddl> [--bind obj.prop=V ...]
                                           bind values, propagate, explain conflicts
    fmt     <file.dddl>                    print normalized DDDL
    builtin <sensing|receiver|walkthrough> print an embedded paper scenario
    serve   <file.dddl> [--port N] [--mode adpm|conventional]
            [--propagation full|incremental] [--journal FILE]
            [--fsync always|never|N] [--checkpoint-every N]
            [--compact-every N]
            [--fault-plan PLAN] [--heartbeat-ms T] [--idle-timeout-ms T]
            [--sessions N] [--allow-create] [--metrics-addr HOST:PORT]
            [--negotiate]
                                           host a registry of collaboration
                                           sessions over the JSONL wire
                                           (--negotiate arms every hosted
                                            session with the conflict
                                            negotiation engine and enables
                                            the client `propose` frame)
                                           protocol; prints
                                           `listening on 127.0.0.1:PORT` up
                                           front (port 0 = ephemeral) and runs
                                           until a client sends shutdown.
                                           --journal appends every executed
                                           operation to FILE and, on restart,
                                           replays it first (prints
                                           `recovered N operations`); --fsync
                                           and --checkpoint-every tune its
                                           durability cadence; --compact-every N
                                           rewrites the journal as a state
                                           snapshot every N ops so recovery
                                           time stays flat as the session ages
                                           (0 = never, the default).
                                           --fault-plan
                                           (e.g. `seed=7,drop=0.1,delay=0.1:5ms,
                                           dup=0.1,corrupt=0.05,truncate=0.05,
                                           kill=20`) injects deterministic
                                           faults into outgoing frames;
                                           --heartbeat-ms / --idle-timeout-ms
                                           tune half-open peer detection.
                                           --sessions N pre-creates named
                                           sessions s1..sN (fresh copies of the
                                           scenario, with per-session journals
                                           FILE.s1..FILE.sN); --allow-create
                                           lets clients create further sessions
                                           with a `create` frame.
                                           --metrics-addr additionally serves a
                                           plaintext per-session metrics
                                           exposition on HOST:PORT (port 0 =
                                           ephemeral; prints `metrics on ADDR`)
                                           — scrape it with nc/curl
    top     <addr> [--session NAME] [--interval MS] [--json] [--count N]
                                           live per-session telemetry: arms the
                                           server's `watch` stats push and
                                           renders each report as a table
                                           (connections, ops/s, p99 submit
                                           latency, inbox drops, reconnects,
                                           journal bytes) — or as raw
                                           stats_reply JSONL with --json.
                                           Without --session it watches every
                                           session plus the `*` rollup (an
                                           operator view); --count N exits
                                           after N reports (0 = until the
                                           server goes away)
    client  <addr> [--designer N] [--subscribe | --subscribe-all]
            [--expect-events K] [--timeout-ms T] [--fault-plan PLAN]
            [--session NAME]
                                           connect as designer N, optionally
                                           bind to session NAME (creating it
                                           where the server allows), optionally
                                           subscribe to notifications, and print
                                           received frames as JSONL; exits
                                           non-zero if fewer than K events
                                           arrive within T ms (default 5000)
    submit  <addr> [--designer N] [--problem NAME] [--assign obj.prop=V]
            [--unbind obj.prop] [--verify] [--constraints c1,c2] [--shutdown]
            [--session NAME]
                                           one-shot scripted request: submit a
                                           design operation (or shut the whole
                                           server down) into session NAME (the
                                           default session if omitted) and
                                           print the response frames.
                                           Exit codes: 75 = retryable transport
                                           failure (connection, timeout), 65 =
                                           fatal (rejected operation, protocol
                                           error) — the binary prints which
    help                                   this text
";

/// `adpm check`: compile the scenario, run one propagation over the
/// initial requirements, and report sizes + per-property feasibility.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable or invalid scenarios.
pub fn check(source: &str) -> Result<String, CliError> {
    let scenario = compile_source(source)?;
    let dpm = scenario.build_dpm(DpmConfig::adpm());
    let mut net = dpm.network().clone();
    let outcome = propagate(&mut net, &PropagationConfig::default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario: {} properties, {} constraints, {} problems, {} designers",
        net.property_count(),
        net.constraint_count(),
        dpm.problems().len(),
        dpm.designers().len()
    );
    let cross = net
        .constraint_ids()
        .filter(|cid| net.is_cross_object(*cid))
        .count();
    let _ = writeln!(out, "cross-subsystem constraints: {cross}");
    let _ = writeln!(
        out,
        "initial propagation: {} evaluations, fixpoint = {}, conflicts = {}",
        outcome.evaluations,
        outcome.reached_fixpoint,
        outcome.conflicts.len()
    );
    for cid in &outcome.conflicts {
        let _ = writeln!(out, "  CONFLICT: {}", net.constraint(*cid));
    }
    let _ = writeln!(out, "feasible subspaces after propagation:");
    for pid in net.property_ids() {
        let meta = net.property(pid);
        let marker = if net.feasible(pid).is_empty() {
            "  EMPTY  "
        } else if net.is_bound(pid) {
            "  bound  "
        } else {
            "         "
        };
        let _ = writeln!(
            out,
            "{marker}{:<12}.{:<14} {}",
            meta.object(),
            meta.name(),
            net.feasible(pid)
        );
    }
    if outcome.conflicts.is_empty() && !net.property_ids().any(|p| net.feasible(p).is_empty()) {
        let _ = writeln!(out, "OK: the scenario is consistent");
    } else {
        let _ = writeln!(out, "WARNING: the scenario is over-constrained");
    }
    Ok(out)
}

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Management mode (`λ`).
    pub mode: ManagementMode,
    /// Random seed.
    pub seed: u64,
    /// Operation cap.
    pub max_operations: usize,
    /// Which DCM propagation path ADPM runs after each operation.
    pub propagation: PropagationKind,
    /// Which revision engine runs the DCM hot path: the AST interpreter
    /// (the default), the compiled flat-program engine, or the compiled
    /// engine parallelized across connected components. All engines reach
    /// identical fixed points (`adpm diff-trace` between engines is
    /// clean); only wall-clock differs.
    pub engine: PropagationEngine,
    /// Emit the per-operation capture as CSV instead of the summary.
    pub csv: bool,
    /// Stream a JSONL trace of the run (see `docs/OBSERVABILITY.md` for the
    /// schema) to this path.
    pub trace: Option<PathBuf>,
    /// Append the aggregate counter totals to the report.
    pub metrics: bool,
    /// Run designers as real threads against a collaboration session
    /// instead of the sequential engine.
    pub concurrent: bool,
    /// With [`concurrent`](Self::concurrent): act strictly round-robin so
    /// the run is a deterministic function of the seed.
    pub turn_barrier: bool,
    /// Route every submission over loopback TCP through reconnecting
    /// clients (implies the turn barrier) and report a `state digest`.
    pub remote: bool,
    /// With [`remote`](Self::remote): inject deterministic faults into
    /// every server-side outgoing frame.
    pub fault_plan: Option<FaultPlan>,
    /// Negotiate conflicts instead of leaving them to backtracking
    /// (implies [`concurrent`](Self::concurrent)): each new violation
    /// triggers a bounded viewpoint negotiation among the affected
    /// designers (policies cycle through the TeamSim roster —
    /// compromising, argumentative, stubborn) and an accepted relaxation
    /// is applied as a normal journaled operation.
    pub negotiate: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mode: ManagementMode::Adpm,
            seed: 0,
            max_operations: 5_000,
            propagation: PropagationKind::Full,
            engine: PropagationEngine::Interp,
            csv: false,
            trace: None,
            metrics: false,
            concurrent: false,
            turn_barrier: false,
            remote: false,
            fault_plan: None,
            negotiate: false,
        }
    }
}

/// `adpm run`: simulate one TeamSim run and report its statistics.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid scenarios.
pub fn run(source: &str, options: &RunOptions) -> Result<String, CliError> {
    let scenario = compile_source(source)?;
    let mut config = SimulationConfig::for_mode(options.mode, options.seed);
    config.max_operations = options.max_operations;
    config.propagation_kind = options.propagation;
    config.propagation.engine = options.engine;

    let metrics = options.metrics.then(|| Arc::new(InMemorySink::new()));
    let trace = options
        .trace
        .as_deref()
        .map(JsonlSink::create)
        .transpose()?
        .map(Arc::new);
    let mut sinks: Vec<Arc<dyn MetricsSink>> = Vec::new();
    if let Some(m) = &metrics {
        sinks.push(m.clone() as Arc<dyn MetricsSink>);
    }
    if let Some(t) = &trace {
        sinks.push(t.clone() as Arc<dyn MetricsSink>);
    }
    let sink: Option<Arc<dyn MetricsSink>> =
        (!sinks.is_empty()).then(|| Arc::new(TeeSink::new(sinks)) as Arc<dyn MetricsSink>);
    let mut digest: Option<u64> = None;
    let stats = if options.remote {
        let mut dpm = scenario.build_dpm(config.dpm_config());
        if let Some(s) = &sink {
            dpm.set_sink(s.clone());
        }
        let outcome = run_concurrent_remote(dpm, &config, options.fault_plan.as_ref());
        digest = Some(state_fingerprint(&outcome.dpm));
        outcome.stats
    } else if options.concurrent || options.negotiate {
        let mut dpm = scenario.build_dpm(config.dpm_config());
        if let Some(s) = &sink {
            dpm.set_sink(s.clone());
        }
        let negotiation = options.negotiate.then(|| NegotiationConfig {
            policies: NegotiationPolicy::default_team(dpm.designers().len()),
            ..NegotiationConfig::default()
        });
        run_concurrent_dpm_with(dpm, &config, options.turn_barrier, negotiation).stats
    } else {
        match &sink {
            None => run_once(&scenario, config),
            Some(s) => run_once_with_sink(&scenario, config, s.clone()),
        }
    };
    if let Some(t) = &trace {
        t.finish()?;
    }

    if options.csv {
        return Ok(adpm_teamsim::report::run_csv(&stats));
    }
    let mut out = String::new();
    let driver = if options.remote {
        if options.fault_plan.is_some() {
            " (remote, fault plan)"
        } else {
            " (remote)"
        }
    } else {
        match (
            options.concurrent || options.negotiate,
            options.turn_barrier,
            options.negotiate,
        ) {
            (false, _, _) => "",
            (true, false, false) => " (concurrent)",
            (true, true, false) => " (concurrent, turn barrier)",
            (true, false, true) => " (concurrent, negotiation)",
            (true, true, true) => " (concurrent, turn barrier, negotiation)",
        }
    };
    let _ = writeln!(
        out,
        "mode {:?}, seed {}{driver}: completed = {}",
        options.mode, options.seed, stats.completed
    );
    let _ = writeln!(out, "operations:             {}", stats.operations);
    let _ = writeln!(
        out,
        "constraint evaluations: {} ({} during setup)",
        stats.evaluations, stats.setup_evaluations
    );
    let _ = writeln!(out, "design spins:           {}", stats.spins);
    let _ = writeln!(
        out,
        "violations found:       {}",
        stats.total_violations_found()
    );
    let _ = writeln!(out, "operations per designer:");
    for (designer, ops) in stats.operations_by_designer() {
        let _ = writeln!(out, "  designer{designer}: {ops}");
    }
    if let Some(digest) = digest {
        let _ = writeln!(out, "state digest: {digest:016x}");
    }
    if let Some(m) = &metrics {
        let _ = writeln!(out, "counters:");
        let _ = write!(out, "{}", m.snapshot());
    }
    if let Some(path) = &options.trace {
        let _ = writeln!(out, "trace written to {}", path.display());
    }
    Ok(out)
}

/// `adpm compare`: run both modes over `seeds` seeds and print the Fig. 9
/// style comparison.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid scenarios.
pub fn compare(source: &str, seeds: u64) -> Result<String, CliError> {
    let scenario = compile_source(source)?;
    let mut conventional = Batch::new();
    let mut adpm = Batch::new();
    for seed in 0..seeds {
        conventional.push(run_once(&scenario, SimulationConfig::conventional(seed)));
        adpm.push(run_once(&scenario, SimulationConfig::adpm(seed)));
    }
    Ok(adpm_teamsim::report::comparison_block(
        &format!("{seeds}-seed comparison"),
        &conventional,
        &adpm,
    ))
}

/// `adpm explain`: bind the given `object.property=value` assignments,
/// propagate, and print an explanation for every violated constraint.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid scenarios, malformed bindings,
/// unknown properties, or out-of-range values.
pub fn explain(source: &str, bindings: &[String]) -> Result<String, CliError> {
    let scenario = compile_source(source)?;
    let dpm = scenario.build_dpm(DpmConfig::adpm());
    let mut net = dpm.network().clone();
    for binding in bindings {
        let (path, value) = binding.split_once('=').ok_or_else(|| {
            CliError::Usage(format!("--bind expects obj.prop=value, got `{binding}`"))
        })?;
        let (object, property) = path.split_once('.').ok_or_else(|| {
            CliError::Usage(format!("--bind expects obj.prop=value, got `{binding}`"))
        })?;
        let pid = net.property_by_name(object, property).ok_or_else(|| {
            CliError::Usage(format!("unknown property `{path}`"))
        })?;
        let value: f64 = value
            .parse()
            .map_err(|_| CliError::Usage(format!("`{value}` is not a number")))?;
        // Re-contextualize network errors with the user's property path —
        // the network only knows internal ids, which mean nothing to the
        // person typing --bind.
        net.bind(pid, Value::number(value)).map_err(|e| {
            let reason = match &e {
                NetworkError::ValueOutsideDomain { .. } => {
                    format!("the domain is {}", net.property(pid).initial_domain())
                }
                NetworkError::KindMismatch { value_kind, .. } => {
                    format!("a {value_kind} value does not fit its domain kind")
                }
                _ => e.to_string(),
            };
            CliError::Usage(format!("cannot bind `{path}` to {value}: {reason}"))
        })?;
    }
    propagate(&mut net, &PropagationConfig::default());
    let explanations = explain_all_violations(&net);
    let mut out = String::new();
    if explanations.is_empty() {
        let _ = writeln!(out, "no violations — all constraints hold");
    } else {
        for e in explanations {
            let _ = write!(out, "{e}");
        }
    }
    Ok(out)
}

/// `adpm analyze`: profile a JSONL trace — totals, per-constraint and
/// per-property hot-spots, designer profiles, propagation shape, and span
/// timing rollups. With `json` the report is emitted as flat JSONL
/// (`a_*`-tagged lines, themselves parseable by [`parse_trace`]).
///
/// # Errors
///
/// Returns [`CliError::Trace`] for malformed trace text.
pub fn analyze(trace: &str, json: bool) -> Result<String, CliError> {
    let lines = parse_trace(trace)?;
    let report = analyze_trace(&lines);
    Ok(if json { report.to_jsonl() } else { report.render() })
}

/// `adpm analyze --vs`: side-by-side comparison of two trace profiles over
/// the paper's statistics — the λ=T vs λ=F view of §3.2.
///
/// # Errors
///
/// Returns [`CliError::Trace`] if either trace is malformed.
pub fn analyze_vs(a: &str, b: &str) -> Result<String, CliError> {
    let a = analyze_trace(&parse_trace(a)?);
    let b = analyze_trace(&parse_trace(b)?);
    Ok(render_comparison(&a, &b))
}

/// `adpm diff-trace`: compare candidate trace `b` against baseline `a`.
///
/// # Errors
///
/// Returns [`CliError::Trace`] for malformed traces, and
/// [`CliError::Regression`] (carrying the rendered report) when any
/// statistic regresses beyond the thresholds — the binary maps that to a
/// non-zero exit.
pub fn diff_trace(a: &str, b: &str, thresholds: &DiffThresholds) -> Result<String, CliError> {
    let a = analyze_trace(&parse_trace(a)?);
    let b = analyze_trace(&parse_trace(b)?);
    let diff = diff_traces(&a, &b, thresholds);
    let report = diff.render();
    if diff.has_regressions() {
        Err(CliError::Regression(report))
    } else {
        Ok(report)
    }
}

/// `adpm fmt`: parse and pretty-print the scenario (normalized DDDL).
///
/// # Errors
///
/// Returns a [`CliError`] for unparsable input (the input need not
/// compile — formatting is purely syntactic).
pub fn fmt(source: &str) -> Result<String, CliError> {
    Ok(to_source(&parse(source)?))
}

/// `adpm builtin`: the embedded source of one of the paper's scenarios.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for an unknown scenario name.
pub fn builtin(name: &str) -> Result<String, CliError> {
    match name {
        "sensing" => Ok(adpm_scenarios::SENSING_DDDL.to_owned()),
        "receiver" => Ok(adpm_scenarios::receiver_dddl(
            adpm_scenarios::DEFAULT_GAIN_REQUIREMENT,
        )),
        "walkthrough" => Ok(adpm_scenarios::WALKTHROUGH_DDDL.to_owned()),
        other => Err(CliError::Usage(format!(
            "unknown builtin `{other}` (expected sensing, receiver, or walkthrough)"
        ))),
    }
}

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on loopback; 0 picks an ephemeral port.
    pub port: u16,
    /// Management mode (`λ`) for the hosted session.
    pub mode: ManagementMode,
    /// DCM propagation path for the hosted session.
    pub propagation: PropagationKind,
    /// Journal every executed operation to this file; on restart the
    /// journal is recovered (replayed) before the server binds.
    pub journal: Option<PathBuf>,
    /// Fsync cadence for the journal.
    pub fsync: FsyncPolicy,
    /// Ops between journal checkpoints (`jck` lines); 0 disables them.
    pub checkpoint_every: u64,
    /// Ops between journal compactions (snapshot + rotate); 0 disables
    /// compaction and the journal grows without bound.
    pub compact_every: u64,
    /// Deterministic faults injected into every outgoing frame.
    pub fault_plan: Option<FaultPlan>,
    /// Silence before the server pings a quiet connection (milliseconds).
    pub heartbeat_ms: u64,
    /// Silence after which a connection is declared half-open and dropped
    /// (milliseconds).
    pub idle_timeout_ms: u64,
    /// Pre-create this many named sessions (`s1`..`sN`), each a fresh copy
    /// of the scenario with its own journal at `FILE.sK`.
    pub sessions: u32,
    /// Let clients create further named sessions with a `create` frame.
    pub allow_create: bool,
    /// Also serve a plaintext metrics exposition on this address (the
    /// `metrics on HOST:PORT` announce line carries the bound address).
    pub metrics_addr: Option<std::net::SocketAddr>,
    /// Spawn every hosted session with a negotiation engine: new
    /// violations trigger bounded viewpoint negotiation (policies cycle
    /// through the TeamSim roster) and clients may `propose` on a
    /// violated constraint to trigger one on demand.
    pub negotiate: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            mode: ManagementMode::Adpm,
            propagation: PropagationKind::Full,
            journal: None,
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_every: 32,
            compact_every: 0,
            fault_plan: None,
            heartbeat_ms: 10_000,
            idle_timeout_ms: 30_000,
            sessions: 0,
            allow_create: false,
            metrics_addr: None,
            negotiate: false,
        }
    }
}

/// `adpm serve`: host a collaboration session for the scenario over the
/// JSONL wire protocol on loopback TCP.
///
/// `announce` is called with the `listening on 127.0.0.1:PORT` line as
/// soon as the listener is bound — the binary prints and flushes it so
/// scripts can scrape the ephemeral port — and the function then blocks
/// until a client sends a `shutdown` frame. With a journal configured, a
/// `recovered N operations` line is announced first (recovery replays the
/// journal's longest valid prefix before the server binds). Returns a
/// summary of the final design state.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid scenarios, bind failures, or an
/// unrecoverable journal.
pub fn serve(
    source: &str,
    options: &ServeOptions,
    announce: &mut dyn FnMut(&str),
) -> Result<String, CliError> {
    let scenario = compile_source(source)?;
    let mut config = SimulationConfig::for_mode(options.mode, 0);
    config.propagation_kind = options.propagation;
    let mut dpm = scenario.build_dpm(config.dpm_config());
    dpm.initialize();
    let mut session = SessionOptions {
        negotiation: options.negotiate.then(|| NegotiationConfig {
            policies: NegotiationPolicy::default_team(dpm.designers().len()),
            ..NegotiationConfig::default()
        }),
        ..SessionOptions::default()
    };
    if let Some(path) = &options.journal {
        let report = if path.exists() {
            let report = recover(path, &mut dpm)?;
            announce(&format!(
                "recovered {} operations from {}{}",
                report.ops,
                path.display(),
                if report.truncated_bytes > 0 {
                    " (discarded a torn suffix)"
                } else {
                    ""
                }
            ));
            for warning in &report.warnings {
                announce(&format!("recovery warning: {warning}"));
            }
            Some(report)
        } else {
            None
        };
        let mut writer = JournalWriter::open(
            JournalConfig {
                path: path.clone(),
                fsync: options.fsync,
                checkpoint_every: options.checkpoint_every,
                compact_every: options.compact_every,
            },
            &dpm,
            report.map(|r| r.journal_bytes),
        )?;
        if let Some(plan) = options.fault_plan.as_ref().filter(|p| p.has_disk_faults()) {
            writer = writer.with_disk_faults(DiskFaultInjector::new(plan, 0));
        }
        session.journal = Some(writer);
    }
    let server_options = ServerOptions {
        heartbeat: std::time::Duration::from_millis(options.heartbeat_ms),
        idle_timeout: std::time::Duration::from_millis(options.idle_timeout_ms),
        fault_plan: options.fault_plan.clone(),
        allow_create: options.allow_create,
        metrics_addr: options.metrics_addr,
        ..ServerOptions::default()
    };
    let factory: SessionFactory = {
        let source = source.to_owned();
        let options = options.clone();
        Box::new(move |name| {
            named_session_state(&source, &options, name)
                .map_err(|e| std::io::Error::other(e.to_string()))
        })
    };
    let precreate: Vec<String> = (1..=options.sessions).map(|i| format!("s{i}")).collect();
    let server = CollabServer::bind_registry(
        dpm,
        options.port,
        server_options,
        session,
        Some(factory),
        &precreate,
    )?;
    announce(&format!("listening on {}", server.local_addr()));
    if let Some(addr) = server.metrics_addr() {
        announce(&format!("metrics on {addr}"));
    }
    let dpm = server.wait();
    let network = dpm.network();
    let bound = network
        .property_ids()
        .filter(|id| network.is_bound(*id))
        .count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "session closed: {} operations, {} bound properties, {} violations",
        dpm.operations_total(),
        bound,
        network.violated_constraints().len()
    );
    Ok(out)
}

/// Builds the state for one named session hosted by [`serve`]: a fresh
/// initialized copy of the scenario, plus — when a journal is configured —
/// a per-session journal at the sibling path `FILE.<name>`, recovered
/// first if it already exists.
fn named_session_state(
    source: &str,
    options: &ServeOptions,
    name: &str,
) -> Result<(DesignProcessManager, SessionOptions), CliError> {
    let scenario = compile_source(source)?;
    let mut config = SimulationConfig::for_mode(options.mode, 0);
    config.propagation_kind = options.propagation;
    let mut dpm = scenario.build_dpm(config.dpm_config());
    dpm.initialize();
    let mut session = SessionOptions {
        negotiation: options.negotiate.then(|| NegotiationConfig {
            policies: NegotiationPolicy::default_team(dpm.designers().len()),
            ..NegotiationConfig::default()
        }),
        ..SessionOptions::default()
    };
    if let Some(base) = &options.journal {
        let path = PathBuf::from(format!("{}.{name}", base.display()));
        let resumed = if path.exists() {
            Some(recover(&path, &mut dpm)?.journal_bytes)
        } else {
            None
        };
        let mut writer = JournalWriter::open(
            JournalConfig {
                path,
                fsync: options.fsync,
                checkpoint_every: options.checkpoint_every,
                compact_every: options.compact_every,
            },
            &dpm,
            resumed,
        )?;
        if let Some(plan) = options.fault_plan.as_ref().filter(|p| p.has_disk_faults()) {
            // Per-session stream: fold the name so each journal draws its
            // own deterministic disk-fault schedule.
            let stream = name.bytes().fold(0u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
            writer = writer.with_disk_faults(DiskFaultInjector::new(plan, stream));
        }
        session.journal = Some(writer);
    }
    Ok((dpm, session))
}

/// Options for [`client`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Designer index to hello as.
    pub designer: u32,
    /// Subscribe with connectivity-derived interests.
    pub subscribe: bool,
    /// Subscribe to every notification instead.
    pub subscribe_all: bool,
    /// Wait for at least this many notification frames before exiting;
    /// fewer within the timeout is an error (the smoke-test contract).
    pub expect_events: usize,
    /// How long to wait for the expected events, in milliseconds.
    pub timeout_ms: u64,
    /// Deterministic faults injected into this client's *outgoing* frames.
    pub fault_plan: Option<FaultPlan>,
    /// Bind to this named session after the hello (creating it where the
    /// server allows); `None` stays in the default session.
    pub session: Option<String>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            designer: 0,
            subscribe: false,
            subscribe_all: false,
            expect_events: 0,
            timeout_ms: 5_000,
            fault_plan: None,
            session: None,
        }
    }
}

fn parse_addr(addr: &str) -> Result<std::net::SocketAddr, CliError> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(CliError::Io)?
        .next()
        .ok_or_else(|| CliError::Usage(format!("cannot resolve `{addr}`")))
}

/// Fails on a protocol-level `err` response; passes everything else.
fn expect_ok(frame: Frame) -> Result<Frame, CliError> {
    match frame {
        Frame::Error { message } => Err(CliError::Wire(WireError::protocol(message))),
        other => Ok(other),
    }
}

/// Like [`expect_ok`], but also fails on the typed `attach_rejected`
/// reply to a session bind.
fn expect_session(frame: Frame) -> Result<Frame, CliError> {
    match frame {
        Frame::AttachRejected { name, reason } => Err(CliError::Wire(WireError::protocol(
            format!("session `{name}` rejected: {reason}"),
        ))),
        other => expect_ok(other),
    }
}

/// Connects, classifying failure as a *retryable* transport error so
/// scripted callers (`adpm submit`) exit 75, not a generic failure.
fn connect_wire(addr: &str) -> Result<CollabClient, CliError> {
    CollabClient::connect(parse_addr(addr)?)
        .map_err(|e| CliError::Wire(WireError::io(format!("connect failed: {e}"))))
}

/// `adpm client`: connect to a collaboration server as a designer,
/// optionally subscribe, and collect notification frames. Every received
/// frame is echoed in wire format (one JSON object per line), so the
/// output is itself machine-readable.
///
/// # Errors
///
/// Returns a [`CliError`] for connection or protocol failures, and a
/// [`CliError::Wire`] when fewer than `expect_events` notifications
/// arrive within the timeout.
pub fn client(addr: &str, options: &ClientOptions) -> Result<String, CliError> {
    let mut connection = connect_wire(addr)?;
    if let Some(plan) = &options.fault_plan {
        connection.set_fault_injector(FaultInjector::new(plan, 0));
    }
    let mut out = String::new();
    let welcome = expect_ok(connection.request(&Frame::Hello {
        designer: options.designer,
    })?)?;
    out.push_str(&welcome.to_line());
    if let Some(name) = &options.session {
        let attached = expect_session(connection.request(&Frame::CreateSession {
            name: name.clone(),
        })?)?;
        out.push_str(&attached.to_line());
    }
    if options.subscribe || options.subscribe_all {
        let subscribed = expect_ok(connection.request(&Frame::Subscribe {
            all: options.subscribe_all,
            resume_from: None,
        })?)?;
        out.push_str(&subscribed.to_line());
    }
    let deadline =
        std::time::Instant::now() + std::time::Duration::from_millis(options.timeout_ms);
    let mut received = 0usize;
    while received < options.expect_events {
        let now = std::time::Instant::now();
        if now >= deadline {
            break;
        }
        match connection.next_event(deadline - now)? {
            None => break,
            Some(event) => {
                out.push_str(&event.to_line());
                received += 1;
            }
        }
    }
    let _ = connection.send(&Frame::Bye);
    if received < options.expect_events {
        return Err(CliError::Wire(WireError::timeout(format!(
            "expected {} notification(s), received {received}",
            options.expect_events
        ))));
    }
    Ok(out)
}

/// What [`submit_request`] should send.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitAction {
    /// Bind `object.property` to a value.
    Assign {
        /// Property as `object.property`.
        property: String,
        /// The value to bind.
        value: f64,
    },
    /// Unbind `object.property`.
    Unbind {
        /// Property as `object.property`.
        property: String,
    },
    /// Run verification, optionally limited to comma-joined constraint
    /// names.
    Verify {
        /// Comma-joined constraint names; empty for all.
        constraints: String,
    },
    /// Ask the server to shut the whole session down.
    Shutdown,
}

/// `adpm submit`: one scripted request against a collaboration server —
/// hello, optionally bind to a named `session`, submit (or shutdown),
/// print the response frames in wire format.
///
/// # Errors
///
/// Errors are classified for scripting (see [`CliError::exit_code`]):
/// connection failures and timeouts are *retryable* (exit 75); a
/// `rejected` verdict, a protocol-level `err` response (unknown names,
/// missing `--problem`, ...), and malformed frames are *fatal* (exit 65).
pub fn submit_request(
    addr: &str,
    designer: u32,
    problem: Option<&str>,
    session: Option<&str>,
    action: &SubmitAction,
) -> Result<String, CliError> {
    let mut connection = connect_wire(addr)?;
    let mut out = String::new();
    if let SubmitAction::Shutdown = action {
        connection.send(&Frame::Shutdown).map_err(CliError::Io)?;
        if let Some(reply) = connection.recv(std::time::Duration::from_secs(5))? {
            out.push_str(&reply.to_line());
        }
        return Ok(out);
    }
    let problem = problem
        .ok_or_else(|| CliError::Usage("submit needs --problem NAME".into()))?
        .to_owned();
    let op = match action.clone() {
        SubmitAction::Assign { property, value } => WireOp::Assign {
            problem,
            property,
            value,
        },
        SubmitAction::Unbind { property } => WireOp::Unbind { problem, property },
        SubmitAction::Verify { constraints } => WireOp::Verify {
            problem,
            constraints,
        },
        SubmitAction::Shutdown => unreachable!("handled above"),
    };
    let welcome = expect_ok(connection.request(&Frame::Hello { designer })?)?;
    out.push_str(&welcome.to_line());
    if let Some(name) = session {
        let attached = expect_session(connection.request(&Frame::CreateSession {
            name: name.to_owned(),
        })?)?;
        out.push_str(&attached.to_line());
    }
    let outcome = expect_ok(connection.request(&Frame::Submit { op, cid: None })?)?;
    out.push_str(&outcome.to_line());
    let _ = connection.send(&Frame::Bye);
    if let Frame::Rejected { reason, .. } = &outcome {
        // The operation was *validly refused* — retrying the identical
        // request will be refused again, so the failure is fatal.
        return Err(CliError::Wire(WireError::protocol(format!(
            "operation rejected: {reason}"
        ))));
    }
    Ok(out)
}

/// Options for [`top`].
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Watch only this session (attaching to it). `None` watches every
    /// hosted session plus the `*` rollup — the operator view a fresh
    /// (default-session) connection is entitled to.
    pub session: Option<String>,
    /// Refresh interval in milliseconds.
    pub interval_ms: u64,
    /// Emit raw `stats_reply` frames as JSONL instead of a table.
    pub json: bool,
    /// Stop after this many reports; 0 keeps watching until the server
    /// goes away.
    pub count: u64,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            session: None,
            interval_ms: 1000,
            json: false,
            count: 0,
        }
    }
}

/// `adpm top`: subscribe to a server's `watch` stats push and render each
/// report as a per-session table (or as raw `stats_reply` JSONL with
/// `--json`). Each report is handed to `emit`; ops/s is computed
/// client-side from successive `session_ops` samples.
///
/// # Errors
///
/// Returns a [`CliError`] for connection failures, a rejected session
/// attach, or a server-side error reply (e.g. watching all sessions from
/// a non-operator connection).
pub fn top(
    addr: &str,
    options: &TopOptions,
    emit: &mut dyn FnMut(&str),
) -> Result<String, CliError> {
    let mut connection = connect_wire(addr)?;
    if let Some(name) = &options.session {
        expect_session(connection.request(&Frame::AttachSession { name: name.clone() })?)?;
    }
    let all = options.session.is_none();
    let interval_ms = options.interval_ms.max(1);
    connection
        .send(&Frame::Watch { all, interval_ms })
        .map_err(CliError::Io)?;
    // Reports arrive at the watch cadence; allow a few missed beats
    // before declaring the server gone.
    let report_timeout = std::time::Duration::from_millis(interval_ms.saturating_mul(4) + 5_000);
    let mut previous: std::collections::BTreeMap<String, (u64, std::time::Instant)> =
        std::collections::BTreeMap::new();
    let mut reports = 0u64;
    loop {
        let batch = match read_stats_batch(&mut connection, report_timeout) {
            Ok(batch) => batch,
            // After at least one report, a dropped connection is the
            // server shutting down — a clean exit for a watcher.
            Err(_) if reports > 0 => break,
            Err(e) => return Err(e),
        };
        reports += 1;
        if options.json {
            for frame in &batch {
                emit(frame.to_line().trim_end());
            }
        } else {
            emit(&render_top_table(&batch, &mut previous));
        }
        if options.count != 0 && reports >= options.count {
            break;
        }
    }
    Ok(String::new())
}

/// Collects one pushed stats report: every `stats_reply` up to the
/// terminating `end`. Event frames interleaved by a subscription are
/// ignored; an `err` frame fails the watch.
fn read_stats_batch(
    connection: &mut CollabClient,
    timeout: std::time::Duration,
) -> Result<Vec<Frame>, CliError> {
    let deadline = std::time::Instant::now() + timeout;
    let mut batch = Vec::new();
    loop {
        let now = std::time::Instant::now();
        if now >= deadline {
            return Err(CliError::Wire(WireError::timeout(
                "timed out waiting for a stats report",
            )));
        }
        match connection.recv(deadline - now)? {
            None => continue,
            Some(Frame::End) => return Ok(batch),
            Some(reply @ Frame::StatsReply { .. }) => batch.push(reply),
            Some(Frame::Error { message }) => {
                return Err(CliError::Wire(WireError::protocol(message)))
            }
            Some(_) => {}
        }
    }
}

/// Renders one watch report as a fixed-width table. `previous` carries
/// each session's last `session_ops` sample for the ops/s column.
fn render_top_table(
    batch: &[Frame],
    previous: &mut std::collections::BTreeMap<String, (u64, std::time::Instant)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>5} {:>8} {:>9} {:>7} {:>7} {:>11} {:>7} {:>8}",
        "SESSION", "CONN", "OPS/S", "P99(US)", "DROPS", "RECONN", "JOURNAL(B)", "SHED", "EVENTS"
    );
    let now = std::time::Instant::now();
    for frame in batch {
        let Frame::StatsReply {
            session,
            connections,
            counters,
            events,
            p99_us,
            ..
        } = frame
        else {
            continue;
        };
        let ops = counters.get(Counter::SessionOps);
        let rate = match previous.insert(session.clone(), (ops, now)) {
            None => 0.0,
            Some((prev_ops, prev_at)) => {
                let dt = now.duration_since(prev_at).as_secs_f64();
                if dt > 0.0 {
                    ops.saturating_sub(prev_ops) as f64 / dt
                } else {
                    0.0
                }
            }
        };
        // SHED folds both overload paths into one operator signal: work
        // refused at the limits plus appends parked by a degraded journal.
        let shed = counters.get(Counter::OverloadSheds)
            + counters.get(Counter::JournalDegradations);
        let _ = writeln!(
            out,
            "{session:<16} {connections:>5} {rate:>8.1} {p99_us:>9} {:>7} {:>7} {:>11} {shed:>7} {events:>8}",
            counters.get(Counter::InboxDropped),
            counters.get(Counter::Reconnects),
            counters.get(Counter::JournalBytes),
        );
    }
    out
}

/// Parses and dispatches a full argument vector (without the program
/// name). Returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong; the binary prints it
/// to stderr and exits non-zero.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let command = it.next().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "builtin" => {
            let name = it
                .next()
                .ok_or_else(|| CliError::Usage("builtin needs a scenario name".into()))?;
            builtin(name)
        }
        "analyze" => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("analyze needs a trace file".into()))?;
            let rest: Vec<String> = it.cloned().collect();
            let mut json = false;
            let mut vs: Option<String> = None;
            let mut args = rest.iter();
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--json" => json = true,
                    "--vs" => {
                        vs = Some(
                            args.next()
                                .ok_or_else(|| CliError::Usage("--vs needs a trace file".into()))?
                                .clone(),
                        );
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let trace = std::fs::read_to_string(path)?;
            match vs {
                Some(other) => {
                    if json {
                        return Err(CliError::Usage(
                            "--json and --vs cannot be combined".into(),
                        ));
                    }
                    analyze_vs(&trace, &std::fs::read_to_string(other)?)
                }
                None => analyze(&trace, json),
            }
        }
        "diff-trace" => {
            let a = it
                .next()
                .ok_or_else(|| CliError::Usage("diff-trace needs a baseline trace".into()))?;
            let b = it
                .next()
                .ok_or_else(|| CliError::Usage("diff-trace needs a candidate trace".into()))?;
            let rest: Vec<String> = it.cloned().collect();
            let mut thresholds = DiffThresholds::default();
            let mut args = rest.iter();
            while let Some(flag) = args.next() {
                let value = |args: &mut std::slice::Iter<String>| {
                    args.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
                };
                match flag.as_str() {
                    "--abs" => {
                        let v = value(&mut args)?;
                        thresholds.absolute = v.parse().map_err(|_| {
                            CliError::Usage(format!("--abs expects a number, got `{v}`"))
                        })?;
                    }
                    "--rel" => {
                        let v = value(&mut args)?;
                        thresholds.relative = v.parse().map_err(|_| {
                            CliError::Usage(format!("--rel expects a fraction, got `{v}`"))
                        })?;
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            diff_trace(
                &std::fs::read_to_string(a)?,
                &std::fs::read_to_string(b)?,
                &thresholds,
            )
        }
        "serve" => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("serve needs a scenario file".into()))?;
            let source = std::fs::read_to_string(path)?;
            let rest: Vec<String> = it.cloned().collect();
            let options = parse_serve_options(&rest)?;
            // Print the listening line eagerly so scripts can scrape the
            // ephemeral port while the server blocks.
            serve(&source, &options, &mut |line| {
                use std::io::Write as _;
                println!("{line}");
                let _ = std::io::stdout().flush();
            })
        }
        "client" => {
            let addr = it
                .next()
                .ok_or_else(|| CliError::Usage("client needs a server address".into()))?;
            let rest: Vec<String> = it.cloned().collect();
            let options = parse_client_options(&rest)?;
            client(addr, &options)
        }
        "submit" => {
            let addr = it
                .next()
                .ok_or_else(|| CliError::Usage("submit needs a server address".into()))?;
            let rest: Vec<String> = it.cloned().collect();
            let (designer, problem, session, action) = parse_submit_options(&rest)?;
            submit_request(addr, designer, problem.as_deref(), session.as_deref(), &action)
        }
        "top" => {
            let addr = it
                .next()
                .ok_or_else(|| CliError::Usage("top needs a server address".into()))?;
            let rest: Vec<String> = it.cloned().collect();
            let options = parse_top_options(&rest)?;
            top(addr, &options, &mut |report| {
                use std::io::Write as _;
                println!("{report}");
                let _ = std::io::stdout().flush();
            })
        }
        "check" | "fmt" | "run" | "compare" | "explain" => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("{command} needs a scenario file")))?;
            let source = std::fs::read_to_string(path)?;
            let rest: Vec<String> = it.cloned().collect();
            match command {
                "check" => check(&source),
                "fmt" => fmt(&source),
                "run" => {
                    let options = parse_run_options(&rest)?;
                    run(&source, &options)
                }
                "compare" => {
                    let seeds = parse_flag(&rest, "--seeds")?
                        .map(|s| {
                            s.parse::<u64>().map_err(|_| {
                                CliError::Usage(format!("--seeds expects a number, got `{s}`"))
                            })
                        })
                        .transpose()?
                        .unwrap_or(20);
                    compare(&source, seeds)
                }
                _ => {
                    let mut bindings = Vec::new();
                    let mut args = rest.iter();
                    while let Some(flag) = args.next() {
                        if flag == "--bind" {
                            let value = args.next().ok_or_else(|| {
                                CliError::Usage("--bind needs obj.prop=value".into())
                            })?;
                            bindings.push(value.clone());
                        } else {
                            return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                        }
                    }
                    explain(&source, &bindings)
                }
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` — try `adpm help`"
        ))),
    }
}

fn parse_flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, CliError> {
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == name {
            out = Some(
                it.next()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))?
                    .as_str(),
            );
        }
    }
    Ok(out)
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, CliError> {
    let mut options = RunOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--mode" => {
                options.mode = match value(&mut it)?.as_str() {
                    "adpm" => ManagementMode::Adpm,
                    "conventional" | "conv" => ManagementMode::Conventional,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--mode expects adpm or conventional, got `{other}`"
                        )))
                    }
                }
            }
            "--seed" => {
                let v = value(&mut it)?;
                options.seed = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed expects a number, got `{v}`")))?;
            }
            "--max-ops" => {
                let v = value(&mut it)?;
                options.max_operations = v.parse().map_err(|_| {
                    CliError::Usage(format!("--max-ops expects a number, got `{v}`"))
                })?;
            }
            "--csv" => options.csv = true,
            "--trace" => options.trace = Some(PathBuf::from(value(&mut it)?)),
            "--metrics" => options.metrics = true,
            "--concurrent" => options.concurrent = true,
            "--turn-barrier" => options.turn_barrier = true,
            "--remote" => options.remote = true,
            "--negotiate" => options.negotiate = true,
            "--fault-plan" => {
                options.fault_plan = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
                );
            }
            "--propagation" => {
                options.propagation = value(&mut it)?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--propagation: {e}")))?;
            }
            "--engine" => {
                options.engine = value(&mut it)?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--engine: {e}")))?;
            }
            other => match (
                other.strip_prefix("--propagation="),
                other.strip_prefix("--engine="),
            ) {
                (Some(v), _) => {
                    options.propagation = v
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--propagation: {e}")))?;
                }
                (None, Some(v)) => {
                    options.engine = v
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--engine: {e}")))?;
                }
                (None, None) => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
            },
        }
    }
    Ok(options)
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, CliError> {
    let mut options = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--port" => {
                let v = value(&mut it)?;
                options.port = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--port expects a number, got `{v}`")))?;
            }
            "--mode" => {
                options.mode = match value(&mut it)?.as_str() {
                    "adpm" => ManagementMode::Adpm,
                    "conventional" | "conv" => ManagementMode::Conventional,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--mode expects adpm or conventional, got `{other}`"
                        )))
                    }
                }
            }
            "--propagation" => {
                options.propagation = value(&mut it)?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--propagation: {e}")))?;
            }
            "--journal" => options.journal = Some(PathBuf::from(value(&mut it)?)),
            "--fsync" => {
                options.fsync = value(&mut it)?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--fsync: {e}")))?;
            }
            "--checkpoint-every" => {
                let v = value(&mut it)?;
                options.checkpoint_every = v.parse().map_err(|_| {
                    CliError::Usage(format!("--checkpoint-every expects a number, got `{v}`"))
                })?;
            }
            "--compact-every" => {
                let v = value(&mut it)?;
                options.compact_every = v.parse().map_err(|_| {
                    CliError::Usage(format!("--compact-every expects a number, got `{v}`"))
                })?;
            }
            "--fault-plan" => {
                options.fault_plan = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
                );
            }
            "--heartbeat-ms" => {
                let v = value(&mut it)?;
                options.heartbeat_ms = v.parse().map_err(|_| {
                    CliError::Usage(format!("--heartbeat-ms expects a number, got `{v}`"))
                })?;
            }
            "--idle-timeout-ms" => {
                let v = value(&mut it)?;
                options.idle_timeout_ms = v.parse().map_err(|_| {
                    CliError::Usage(format!("--idle-timeout-ms expects a number, got `{v}`"))
                })?;
            }
            "--sessions" => {
                let v = value(&mut it)?;
                options.sessions = v.parse().map_err(|_| {
                    CliError::Usage(format!("--sessions expects a number, got `{v}`"))
                })?;
            }
            "--allow-create" => options.allow_create = true,
            "--metrics-addr" => options.metrics_addr = Some(parse_addr(&value(&mut it)?)?),
            "--negotiate" => options.negotiate = true,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    Ok(options)
}

fn parse_top_options(args: &[String]) -> Result<TopOptions, CliError> {
    let mut options = TopOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        let number = |v: String| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`")))
        };
        match flag.as_str() {
            "--session" => options.session = Some(value(&mut it)?),
            "--interval" => options.interval_ms = number(value(&mut it)?)?,
            "--json" => options.json = true,
            "--count" => options.count = number(value(&mut it)?)?,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    Ok(options)
}

fn parse_client_options(args: &[String]) -> Result<ClientOptions, CliError> {
    let mut options = ClientOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        let number = |v: String| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`")))
        };
        match flag.as_str() {
            "--designer" => options.designer = number(value(&mut it)?)? as u32,
            "--subscribe" => options.subscribe = true,
            "--subscribe-all" => options.subscribe_all = true,
            "--expect-events" => options.expect_events = number(value(&mut it)?)? as usize,
            "--timeout-ms" => options.timeout_ms = number(value(&mut it)?)?,
            "--session" => options.session = Some(value(&mut it)?),
            "--fault-plan" => {
                options.fault_plan = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
                );
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    Ok(options)
}

fn parse_submit_options(
    args: &[String],
) -> Result<(u32, Option<String>, Option<String>, SubmitAction), CliError> {
    let mut designer = 0u32;
    let mut problem: Option<String> = None;
    let mut session: Option<String> = None;
    let mut action: Option<SubmitAction> = None;
    let mut constraints = String::new();
    let mut it = args.iter();
    let set_action = |action: &mut Option<SubmitAction>, new: SubmitAction| {
        if action.is_some() {
            return Err(CliError::Usage(
                "submit takes exactly one of --assign, --unbind, --verify, --shutdown".into(),
            ));
        }
        *action = Some(new);
        Ok(())
    };
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--designer" => {
                let v = value(&mut it)?;
                designer = v.parse().map_err(|_| {
                    CliError::Usage(format!("--designer expects a number, got `{v}`"))
                })?;
            }
            "--problem" => problem = Some(value(&mut it)?),
            "--session" => session = Some(value(&mut it)?),
            "--assign" => {
                let binding = value(&mut it)?;
                let (property, raw) = binding.split_once('=').ok_or_else(|| {
                    CliError::Usage(format!("--assign expects obj.prop=value, got `{binding}`"))
                })?;
                let value: f64 = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("`{raw}` is not a number")))?;
                set_action(
                    &mut action,
                    SubmitAction::Assign {
                        property: property.to_owned(),
                        value,
                    },
                )?;
            }
            "--unbind" => {
                let property = value(&mut it)?;
                set_action(&mut action, SubmitAction::Unbind { property })?;
            }
            "--verify" => set_action(
                &mut action,
                SubmitAction::Verify {
                    constraints: String::new(),
                },
            )?,
            "--constraints" => constraints = value(&mut it)?,
            "--shutdown" => set_action(&mut action, SubmitAction::Shutdown)?,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    let mut action = action.ok_or_else(|| {
        CliError::Usage("submit needs one of --assign, --unbind, --verify, --shutdown".into())
    })?;
    if let SubmitAction::Verify {
        constraints: ref mut list,
    } = action
    {
        *list = constraints;
    } else if !constraints.is_empty() {
        return Err(CliError::Usage(
            "--constraints only applies to --verify".into(),
        ));
    }
    Ok((designer, problem, session, action))
}

/// Compiles a scenario for callers embedding the CLI as a library.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid DDDL.
pub fn load_scenario(source: &str) -> Result<CompiledScenario, CliError> {
    Ok(compile_source(source)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_observe::TraceLine;

    const MINI: &str = r#"
        object rx {
            property P-front : interval(0, 300);
            property P-ser : interval(0, 300);
        }
        constraint power: rx.P-front + rx.P-ser <= 200;
        problem top { constraints: power; designer 0; }
        problem fe under top { outputs: rx.P-front; designer 0; }
        problem de under top { outputs: rx.P-ser; designer 1; }
    "#;

    #[test]
    fn check_reports_sizes_and_consistency() {
        let out = check(MINI).expect("valid scenario");
        assert!(out.contains("2 properties"));
        assert!(out.contains("1 constraints"));
        assert!(out.contains("OK: the scenario is consistent"));
    }

    #[test]
    fn check_flags_overconstrained_scenarios() {
        let broken = r#"
            object o { property x : interval(0, 10); }
            constraint lo: o.x >= 8;
            constraint hi: o.x <= 2;
            problem p { outputs: o.x; designer 0; }
        "#;
        let out = check(broken).expect("compiles fine");
        assert!(out.contains("WARNING: the scenario is over-constrained"), "{out}");
    }

    #[test]
    fn run_completes_the_mini_scenario_in_both_modes() {
        for mode in [ManagementMode::Adpm, ManagementMode::Conventional] {
            let out = run(
                MINI,
                &RunOptions {
                    mode,
                    seed: 1,
                    max_operations: 500,
                    ..RunOptions::default()
                },
            )
            .expect("valid scenario");
            assert!(out.contains("completed = true"), "{mode:?}: {out}");
            assert!(out.contains("operations per designer:"));
        }
    }

    #[test]
    fn run_csv_emits_per_operation_rows() {
        let out = run(
            MINI,
            &RunOptions {
                csv: true,
                seed: 1,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(out.starts_with("op,kind,"));
        assert!(out.lines().count() > 1);
    }

    #[test]
    fn compare_prints_ratio_lines() {
        let out = compare(MINI, 4).expect("valid scenario");
        assert!(out.contains("operations"));
        assert!(out.contains("ratio"));
    }

    #[test]
    fn explain_reports_no_violations_when_consistent() {
        let out = explain(MINI, &["rx.P-front=100".into()]).expect("valid");
        assert!(out.contains("no violations"));
    }

    #[test]
    fn explain_explains_violations() {
        let out = explain(
            MINI,
            &["rx.P-front=150".into(), "rx.P-ser=100".into()],
        )
        .expect("valid");
        assert!(out.contains("power is violated"), "{out}");
        assert!(out.contains("required"), "{out}");
    }

    #[test]
    fn explain_rejects_malformed_bindings() {
        assert!(matches!(
            explain(MINI, &["nonsense".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            explain(MINI, &["rx.ghost=1".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            explain(MINI, &["rx.P-front=banana".into()]),
            Err(CliError::Usage(_))
        ));
        // Out-of-range values are re-contextualized with the property path.
        let err = explain(MINI, &["rx.P-front=9999".into()]).unwrap_err();
        assert!(
            err.to_string().contains("cannot bind `rx.P-front`"),
            "{err}"
        );
    }

    #[test]
    fn fmt_normalizes_and_reparses() {
        let out = fmt(MINI).expect("valid");
        assert!(out.contains("object rx {"));
        assert!(adpm_dddl::parse(&out).is_ok());
    }

    #[test]
    fn builtin_exposes_the_paper_scenarios() {
        for name in ["sensing", "receiver", "walkthrough"] {
            let source = builtin(name).expect("known builtin");
            assert!(adpm_dddl::compile_source(&source).is_ok(), "{name}");
        }
        assert!(matches!(builtin("nope"), Err(CliError::Usage(_))));
    }

    #[test]
    fn dispatch_help_and_unknowns() {
        let out = dispatch(&["help".into()]).expect("help works");
        assert!(out.contains("USAGE"));
        assert!(dispatch(&[]).expect("defaults to help").contains("USAGE"));
        assert!(matches!(
            dispatch(&["frobnicate".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&["check".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&["check".into(), "/no/such/file.dddl".into()]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn dispatch_runs_against_a_real_file() {
        let dir = std::env::temp_dir().join("adpm-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("mini.dddl");
        std::fs::write(&path, MINI).expect("write scenario");
        let path = path.to_string_lossy().to_string();
        let out = dispatch(&["check".into(), path.clone()]).expect("check works");
        assert!(out.contains("OK"));
        let out = dispatch(&[
            "run".into(),
            path.clone(),
            "--mode".into(),
            "conventional".into(),
            "--seed".into(),
            "3".into(),
        ])
        .expect("run works");
        assert!(out.contains("completed = true"));
        let out = dispatch(&["compare".into(), path.clone(), "--seeds".into(), "3".into()])
            .expect("compare works");
        assert!(out.contains("ratio"));
        let out = dispatch(&[
            "explain".into(),
            path,
            "--bind".into(),
            "rx.P-front=150".into(),
            "--bind".into(),
            "rx.P-ser=100".into(),
        ])
        .expect("explain works");
        assert!(out.contains("violated"));
    }

    #[test]
    fn run_with_metrics_appends_the_counter_block() {
        let out = run(
            MINI,
            &RunOptions {
                seed: 1,
                metrics: true,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("operations"), "{out}");
        assert!(out.contains("waves"), "{out}");
    }

    #[test]
    fn run_with_trace_writes_schema_valid_jsonl() {
        let dir = std::env::temp_dir().join("adpm-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("mini-trace.jsonl");
        let out = run(
            MINI,
            &RunOptions {
                seed: 1,
                trace: Some(path.clone()),
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(out.contains("trace written to"), "{out}");
        let text = std::fs::read_to_string(&path).expect("trace file");
        let lines = adpm_observe::parse_trace(&text).expect("schema-valid JSONL");
        assert_eq!(lines.first().map(TraceLine::tag), Some("run_start"));
        assert_eq!(lines.last().map(TraceLine::tag), Some("counters"));
        assert!(lines.iter().any(|l| l.tag() == "summary"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_accepts_trace_and_metrics_flags() {
        let dir = std::env::temp_dir().join("adpm-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let scenario = dir.join("mini-flags.dddl");
        std::fs::write(&scenario, MINI).expect("write scenario");
        let trace = dir.join("mini-flags.jsonl");
        let out = dispatch(&[
            "run".into(),
            scenario.to_string_lossy().into_owned(),
            "--metrics".into(),
            "--trace".into(),
            trace.to_string_lossy().into_owned(),
        ])
        .expect("run works");
        assert!(out.contains("counters:"), "{out}");
        assert!(trace.exists());
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn run_option_parsing_errors() {
        assert!(matches!(
            parse_run_options(&["--mode".into(), "quantum".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_run_options(&["--seed".into(), "NaN!".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_run_options(&["--wat".into()]),
            Err(CliError::Usage(_))
        ));
        let options =
            parse_run_options(&["--seed".into(), "9".into(), "--max-ops".into(), "10".into()])
                .expect("valid options");
        assert_eq!(options.seed, 9);
        assert_eq!(options.max_operations, 10);
        assert_eq!(options.propagation, PropagationKind::Full);
    }

    #[test]
    fn run_option_parsing_accepts_propagation_in_both_forms() {
        let options = parse_run_options(&["--propagation".into(), "incremental".into()])
            .expect("valid options");
        assert_eq!(options.propagation, PropagationKind::Incremental);
        let options =
            parse_run_options(&["--propagation=incremental".into()]).expect("valid options");
        assert_eq!(options.propagation, PropagationKind::Incremental);
        let options = parse_run_options(&["--propagation=full".into()]).expect("valid options");
        assert_eq!(options.propagation, PropagationKind::Full);
        let err = parse_run_options(&["--propagation".into(), "magic".into()]).unwrap_err();
        assert!(err.to_string().contains("--propagation"), "{err}");
        assert!(matches!(
            parse_run_options(&["--propagation=".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn run_option_parsing_accepts_engine_in_both_forms() {
        let options =
            parse_run_options(&["--engine".into(), "compiled".into()]).expect("valid options");
        assert_eq!(options.engine, PropagationEngine::Compiled);
        let options = parse_run_options(&["--engine=compiled-parallel".into()])
            .expect("valid options");
        assert_eq!(options.engine, PropagationEngine::CompiledParallel);
        let options = parse_run_options(&[]).expect("valid options");
        assert_eq!(options.engine, PropagationEngine::Interp);
        let err = parse_run_options(&["--engine".into(), "jit".into()]).unwrap_err();
        assert!(err.to_string().contains("--engine"), "{err}");
        assert!(matches!(
            parse_run_options(&["--engine=".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn run_reports_identical_statistics_across_engines() {
        let base = RunOptions {
            seed: 3,
            max_operations: 150,
            ..RunOptions::default()
        };
        let interp = run(MINI, &base).expect("interp run");
        for engine in [
            PropagationEngine::Compiled,
            PropagationEngine::CompiledParallel,
        ] {
            let out = run(
                MINI,
                &RunOptions {
                    engine,
                    ..base.clone()
                },
            )
            .expect("compiled run");
            assert_eq!(out, interp, "engine {engine} diverged from interp");
        }
    }

    /// Runs the mini scenario with a trace sink and returns the trace text.
    fn mini_trace(seed: u64) -> String {
        let dir = std::env::temp_dir().join("adpm-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("mini-analyze-{seed}-{:?}.jsonl", std::thread::current().id()));
        run(
            MINI,
            &RunOptions {
                seed,
                trace: Some(path.clone()),
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        let text = std::fs::read_to_string(&path).expect("trace file");
        std::fs::remove_file(&path).ok();
        text
    }

    #[test]
    fn analyze_renders_hot_spot_tables() {
        let trace = mini_trace(1);
        let out = analyze(&trace, false).expect("valid trace");
        assert!(out.contains("totals"), "{out}");
        assert!(out.contains("constraint hot-spots"), "{out}");
        assert!(out.contains("power"), "{out}");
        assert!(out.contains("property attribution"), "{out}");
        assert!(out.contains("designer profiles"), "{out}");
        assert!(out.contains("span timings"), "{out}");
    }

    #[test]
    fn analyze_json_round_trips_through_the_parser() {
        let trace = mini_trace(1);
        let out = analyze(&trace, true).expect("valid trace");
        let lines = adpm_observe::parse_trace(&out).expect("analysis JSONL parses");
        assert!(lines.iter().any(|l| l.tag() == "a_total"));
        assert!(lines.iter().any(|l| l.tag() == "a_constraint"));
    }

    #[test]
    fn analyze_vs_prints_a_mode_comparison() {
        let a = mini_trace(1);
        let out = analyze_vs(&a, &a).expect("valid traces");
        assert!(out.contains("operations"), "{out}");
        assert!(matches!(analyze("not json", false), Err(CliError::Trace(_))));
    }

    #[test]
    fn diff_trace_passes_identical_and_fails_doctored_traces() {
        let trace = mini_trace(1);
        let clean = diff_trace(&trace, &trace, &DiffThresholds::default())
            .expect("identical traces never regress");
        assert!(clean.contains("0 regression(s)"), "{clean}");

        // Inflate the summary's evaluation count to fake a regression.
        let evals_field = trace
            .lines()
            .find(|l| l.contains("\"t\":\"summary\""))
            .and_then(|l| {
                l.split("\"evaluations\":")
                    .nth(1)
                    .and_then(|rest| rest.split(&[',', '}'][..]).next())
            })
            .expect("summary has an evaluation count")
            .to_owned();
        let doctored = trace.replace(
            &format!("\"evaluations\":{evals_field}"),
            "\"evaluations\":999999",
        );
        match diff_trace(&trace, &doctored, &DiffThresholds::default()) {
            Err(CliError::Regression(report)) => {
                assert!(report.contains("REGRESSION"), "{report}");
                assert!(report.contains("evaluations"), "{report}");
            }
            other => panic!("expected a regression, got {other:?}"),
        }
        // Generous thresholds absorb the same delta.
        let forgiving = DiffThresholds {
            absolute: 10_000_000,
            relative: 0.0,
        };
        assert!(diff_trace(&trace, &doctored, &forgiving).is_ok());
    }

    #[test]
    fn dispatch_analyze_and_diff_trace_work_end_to_end() {
        let dir = std::env::temp_dir().join("adpm-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("dispatch-analyze.jsonl");
        std::fs::write(&path, mini_trace(2)).expect("write trace");
        let path_str = path.to_string_lossy().to_string();
        let out = dispatch(&["analyze".into(), path_str.clone()]).expect("analyze works");
        assert!(out.contains("constraint hot-spots"), "{out}");
        let out = dispatch(&["analyze".into(), path_str.clone(), "--json".into()])
            .expect("analyze --json works");
        assert!(adpm_observe::parse_trace(&out).is_ok());
        let out = dispatch(&[
            "diff-trace".into(),
            path_str.clone(),
            path_str.clone(),
            "--abs".into(),
            "5".into(),
            "--rel".into(),
            "0.1".into(),
        ])
        .expect("self-diff passes");
        assert!(out.contains("0 regression(s)"), "{out}");
        assert!(matches!(
            dispatch(&["analyze".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&["diff-trace".into(), path_str.clone()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&["analyze".into(), path_str.clone(), "--json".into(), "--vs".into(), path_str]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_concurrent_completes_and_reports_the_driver() {
        let out = run(
            MINI,
            &RunOptions {
                seed: 1,
                max_operations: 500,
                concurrent: true,
                turn_barrier: true,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(out.contains("(concurrent, turn barrier)"), "{out}");
        assert!(out.contains("completed = true"), "{out}");
    }

    #[test]
    fn run_negotiate_implies_concurrent_and_reports_the_driver() {
        let out = run(
            MINI,
            &RunOptions {
                seed: 1,
                max_operations: 500,
                turn_barrier: true,
                negotiate: true,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(out.contains("(concurrent, turn barrier, negotiation)"), "{out}");
        assert!(out.contains("completed = true"), "{out}");
    }

    #[test]
    fn serve_client_submit_end_to_end_over_loopback() {
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        let server = std::thread::spawn(move || {
            serve(MINI, &ServeOptions::default(), &mut |line| {
                let addr = line.strip_prefix("listening on ").expect("announce");
                addr_tx.send(addr.to_owned()).expect("send addr");
            })
        });
        let addr = addr_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("server announces its address");

        // Designer 1 (owns rx.P-ser) subscribes with derived interests in
        // a background thread, waiting for one notification.
        let watcher_addr = addr.clone();
        let watcher = std::thread::spawn(move || {
            client(
                &watcher_addr,
                &ClientOptions {
                    designer: 1,
                    subscribe: true,
                    expect_events: 1,
                    timeout_ms: 10_000,
                    ..ClientOptions::default()
                },
            )
        });
        // Give the watcher a moment to get its subscription in.
        std::thread::sleep(std::time::Duration::from_millis(200));

        // Designer 0 binds rx.P-front; the shared `power` constraint
        // narrows rx.P-ser, which the watcher is interested in.
        let out = submit_request(
            &addr,
            0,
            Some("fe"),
            None,
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0,
            },
        )
        .expect("submit works");
        assert!(out.contains("\"t\":\"executed\""), "{out}");

        let watched = watcher.join().expect("watcher join").expect("event arrives");
        assert!(watched.contains("\"t\":\"event\""), "{watched}");

        let bye = submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        assert!(bye.contains("\"t\":\"bye\""), "{bye}");
        let summary = server.join().expect("server join").expect("serve returns");
        assert!(summary.contains("session closed: 1 operations"), "{summary}");
    }

    #[test]
    fn serve_hosts_isolated_named_sessions() {
        let (addr, _lines, server) = spawn_serve(ServeOptions {
            sessions: 2,
            ..ServeOptions::default()
        });
        // The same property binds to *different* values in s1 and s2, and
        // both land as history seq 1 — each session owns a fresh copy of
        // the scenario.
        let out = submit_request(
            &addr,
            0,
            Some("fe"),
            Some("s1"),
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0,
            },
        )
        .expect("s1 submit");
        assert!(out.contains("\"t\":\"session\",\"name\":\"s1\""), "{out}");
        assert!(out.contains("\"t\":\"executed\",\"seq\":1"), "{out}");
        let out = submit_request(
            &addr,
            0,
            Some("fe"),
            Some("s2"),
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 100.0,
            },
        )
        .expect("s2 submit");
        assert!(out.contains("\"t\":\"executed\",\"seq\":1"), "{out}");
        // Without --allow-create, an unknown session name is a typed
        // rejection — fatal for scripting, exit 65.
        let err = submit_request(
            &addr,
            0,
            Some("fe"),
            Some("ghost"),
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 1.0,
            },
        )
        .expect_err("server does not create sessions");
        assert_eq!(err.exit_code(), 65);
        assert!(err.to_string().contains("ghost"), "{err}");
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        // Both operations landed in named sessions, so the default
        // session's closing summary stays empty.
        let summary = server.join().expect("join").expect("serve returns");
        assert!(summary.contains("session closed: 0 operations"), "{summary}");
    }

    #[test]
    fn submit_option_parsing() {
        let (designer, problem, session, action) = parse_submit_options(&[
            "--designer".into(),
            "1".into(),
            "--problem".into(),
            "fe".into(),
            "--session".into(),
            "team-a".into(),
            "--assign".into(),
            "rx.P-front=150".into(),
        ])
        .expect("valid options");
        assert_eq!(designer, 1);
        assert_eq!(problem.as_deref(), Some("fe"));
        assert_eq!(session.as_deref(), Some("team-a"));
        assert_eq!(
            action,
            SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0
            }
        );
        let (_, _, _, action) = parse_submit_options(&[
            "--verify".into(),
            "--constraints".into(),
            "power".into(),
            "--problem".into(),
            "top".into(),
        ])
        .expect("valid options");
        assert_eq!(
            action,
            SubmitAction::Verify {
                constraints: "power".into()
            }
        );
        assert!(matches!(
            parse_submit_options(&[]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_submit_options(&["--assign".into(), "nonsense".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_submit_options(&[
                "--assign".into(),
                "rx.P-front=1".into(),
                "--shutdown".into()
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_submit_options(&[
                "--unbind".into(),
                "rx.P-front".into(),
                "--constraints".into(),
                "power".into()
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn client_and_serve_option_parsing() {
        let options = parse_client_options(&[
            "--designer".into(),
            "2".into(),
            "--subscribe".into(),
            "--expect-events".into(),
            "3".into(),
            "--timeout-ms".into(),
            "1234".into(),
        ])
        .expect("valid options");
        assert_eq!(options.designer, 2);
        assert!(options.subscribe && !options.subscribe_all);
        assert_eq!(options.expect_events, 3);
        assert_eq!(options.timeout_ms, 1234);
        assert!(matches!(
            parse_client_options(&["--wat".into()]),
            Err(CliError::Usage(_))
        ));
        let options = parse_client_options(&["--session".into(), "team-a".into()])
            .expect("valid options");
        assert_eq!(options.session.as_deref(), Some("team-a"));
        let options = parse_serve_options(&[
            "--port".into(),
            "0".into(),
            "--mode".into(),
            "conventional".into(),
            "--sessions".into(),
            "3".into(),
            "--allow-create".into(),
        ])
        .expect("valid options");
        assert_eq!(options.port, 0);
        assert_eq!(options.mode, ManagementMode::Conventional);
        assert_eq!(options.sessions, 3);
        assert!(options.allow_create);
        assert!(matches!(
            parse_serve_options(&["--port".into(), "banana".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn client_fails_cleanly_when_no_server_listens() {
        // Bind-then-drop to get a port nothing listens on.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let err = client(
            &format!("127.0.0.1:{port}"),
            &ClientOptions::default(),
        )
        .expect_err("nothing listening");
        assert!(matches!(err, CliError::Io(_) | CliError::Wire(_)));
    }

    /// Spawns [`serve`] on an ephemeral port, returning the scraped
    /// address, every announce line, and the join handle.
    #[allow(clippy::type_complexity)]
    fn spawn_serve(
        options: ServeOptions,
    ) -> (
        String,
        std::sync::mpsc::Receiver<String>,
        std::thread::JoinHandle<Result<String, CliError>>,
    ) {
        let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
        let server = std::thread::spawn(move || {
            serve(MINI, &options, &mut |line| {
                line_tx.send(line.to_owned()).expect("send announce");
            })
        });
        let addr = loop {
            let line = line_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("server announces");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_owned();
            }
        };
        (addr, line_rx, server)
    }

    #[test]
    fn top_json_reports_per_session_counters_over_loopback() {
        let (addr, _lines, server) = spawn_serve(ServeOptions {
            sessions: 3,
            ..ServeOptions::default()
        });
        // One operation in s1, two in s2, none in s3.
        for (designer, problem, session, property, value) in [
            (0, "fe", "s1", "rx.P-front", 150.0),
            (0, "fe", "s2", "rx.P-front", 100.0),
            (1, "de", "s2", "rx.P-ser", 50.0),
        ] {
            submit_request(
                &addr,
                designer,
                Some(problem),
                Some(session),
                &SubmitAction::Assign {
                    property: property.into(),
                    value,
                },
            )
            .expect("submit");
        }
        let mut lines: Vec<String> = Vec::new();
        top(
            &addr,
            &TopOptions {
                json: true,
                count: 1,
                interval_ms: 50,
                ..TopOptions::default()
            },
            &mut |line| lines.push(line.to_owned()),
        )
        .expect("top");
        let mut ops = std::collections::BTreeMap::new();
        for line in &lines {
            let frame = Frame::parse_line(&format!("{line}\n")).expect("stats_reply parses");
            let Frame::StatsReply {
                session, counters, ..
            } = frame
            else {
                panic!("expected stats_reply, got {line}");
            };
            ops.insert(session, counters.get(Counter::SessionOps));
        }
        let sessions: Vec<&str> = ops.keys().map(String::as_str).collect();
        assert_eq!(sessions, vec!["*", "default", "s1", "s2", "s3"]);
        assert_eq!(ops["s1"], 1);
        assert_eq!(ops["s2"], 2);
        assert_eq!(ops["s3"], 0);
        assert!(ops["*"] >= 3, "the rollup aggregates every session");
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        server.join().expect("join").expect("serve returns");
    }

    #[test]
    fn serve_announces_and_serves_the_metrics_exposition() {
        let (addr, lines, server) = spawn_serve(ServeOptions {
            metrics_addr: Some("127.0.0.1:0".parse().expect("addr")),
            ..ServeOptions::default()
        });
        // `metrics on` is announced right after `listening on`, which
        // spawn_serve already consumed.
        let metrics = loop {
            let line = lines
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("metrics announce");
            if let Some(a) = line.strip_prefix("metrics on ") {
                break a.to_owned();
            }
        };
        submit_request(
            &addr,
            0,
            Some("fe"),
            None,
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0,
            },
        )
        .expect("submit");
        let mut body = String::new();
        let mut scrape = std::net::TcpStream::connect(&metrics).expect("connect scrape");
        std::io::Read::read_to_string(&mut scrape, &mut body).expect("read scrape");
        let parsed = adpm_observe::parse_exposition(&body);
        assert_eq!(parsed["default"].get(Counter::SessionOps), 1, "{body}");
        assert!(parsed.contains_key("*"), "the rollup is exposed");
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        server.join().expect("join").expect("serve returns");
    }

    #[test]
    fn top_option_parsing() {
        let options = parse_top_options(&[
            "--session".into(),
            "s1".into(),
            "--interval".into(),
            "250".into(),
            "--json".into(),
            "--count".into(),
            "3".into(),
        ])
        .expect("valid options");
        assert_eq!(options.session.as_deref(), Some("s1"));
        assert_eq!(options.interval_ms, 250);
        assert!(options.json);
        assert_eq!(options.count, 3);
        assert!(parse_top_options(&["--bogus".into()]).is_err());
        let defaults = parse_top_options(&[]).expect("empty is fine");
        assert_eq!(defaults.interval_ms, 1000);
        assert_eq!(defaults.count, 0);
    }

    #[test]
    fn top_table_renders_per_session_rows() {
        use adpm_observe::CounterSnapshot;
        let reply = Frame::StatsReply {
            session: "default".into(),
            connections: 2,
            watch: true,
            counters: Box::new(CounterSnapshot::from_fn(|c| match c {
                Counter::SessionOps => 10,
                Counter::InboxDropped => 3,
                Counter::JournalBytes => 4096,
                Counter::OverloadSheds => 5,
                Counter::JournalDegradations => 6,
                _ => 0,
            })),
            events: 7,
            p50_us: 10,
            p90_us: 20,
            p99_us: 30,
        };
        let mut previous = std::collections::BTreeMap::new();
        let table = render_top_table(std::slice::from_ref(&reply), &mut previous);
        let header = table.lines().next().expect("header");
        for column in ["SESSION", "CONN", "OPS/S", "P99(US)", "DROPS", "JOURNAL(B)", "SHED"] {
            assert!(header.contains(column), "{header}");
        }
        let row = table.lines().nth(1).expect("row");
        // SHED = overload_sheds (5) + journal_degradations (6).
        for cell in ["default", "2", "30", "3", "4096", "11", "7"] {
            assert!(row.contains(cell), "{row}");
        }
        // The first sample has no predecessor: rate renders as 0.0.
        assert!(row.contains("0.0"), "{row}");
    }

    #[test]
    fn serve_recovers_its_journal_across_restarts() {
        let dir = std::env::temp_dir().join(format!("adpm-cli-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let journal = dir.join("serve-restart.journal");
        std::fs::remove_file(&journal).ok();
        let options = ServeOptions {
            journal: Some(journal.clone()),
            fsync: FsyncPolicy::Always,
            ..ServeOptions::default()
        };

        // First life: execute one operation, then shut down.
        let (addr, _lines, server) = spawn_serve(options.clone());
        let out = submit_request(
            &addr,
            0,
            Some("fe"),
            None,
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0,
            },
        )
        .expect("submit works");
        assert!(out.contains("\"t\":\"executed\""), "{out}");
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        let summary = server.join().expect("join").expect("serve returns");
        assert!(summary.contains("session closed: 1 operations"), "{summary}");

        // Second life: the journal replays the history before binding, and
        // the recovered operation counts toward the closing summary.
        let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
        let reborn = std::thread::spawn(move || {
            serve(MINI, &options, &mut |line| {
                line_tx.send(line.to_owned()).expect("send announce");
            })
        });
        let first = line_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("recovery announce");
        assert!(
            first.starts_with("recovered 1 operations from "),
            "{first}"
        );
        let addr = line_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("listen announce")
            .strip_prefix("listening on ")
            .expect("announce shape")
            .to_owned();
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        let summary = reborn.join().expect("join").expect("serve returns");
        assert!(summary.contains("session closed: 1 operations"), "{summary}");
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn submit_failures_carry_distinct_exit_codes() {
        // Nothing listening: a *retryable* transport failure, exit 75.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let err = submit_request(
            &format!("127.0.0.1:{port}"),
            0,
            Some("fe"),
            None,
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 150.0,
            },
        )
        .expect_err("nothing listening");
        assert!(err.is_retryable(), "{err}");
        assert_eq!(err.exit_code(), 75);

        // A refused operation: *fatal*, exit 65 — retrying cannot help.
        let (addr, _lines, server) = spawn_serve(ServeOptions::default());
        let err = submit_request(
            &addr,
            0,
            Some("fe"),
            None,
            &SubmitAction::Assign {
                property: "rx.P-front".into(),
                value: 500.0, // outside interval(0, 300)
            },
        )
        .expect_err("out-of-domain assign is rejected");
        assert!(!err.is_retryable(), "{err}");
        assert_eq!(err.exit_code(), 65);
        assert!(err.to_string().contains("rejected"), "{err}");
        // Usage mistakes are neither: conventional exit 2.
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        submit_request(&addr, 0, None, None, &SubmitAction::Shutdown).expect("shutdown");
        server.join().expect("join").expect("serve returns");
    }

    #[test]
    fn run_remote_chaos_converges_to_the_clean_digest() {
        let clean = run(
            MINI,
            &RunOptions {
                seed: 3,
                max_operations: 500,
                remote: true,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(clean.contains("(remote)"), "{clean}");
        let digest_of = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("state digest: ").map(str::to_owned))
                .expect("digest line")
        };
        let chaotic = run(
            MINI,
            &RunOptions {
                seed: 3,
                max_operations: 500,
                remote: true,
                fault_plan: Some(
                    "seed=5,drop=0.1,dup=0.1,delay=0.2:2ms,kill=9"
                        .parse()
                        .expect("plan"),
                ),
                ..RunOptions::default()
            },
        )
        .expect("faulty run still completes");
        assert!(chaotic.contains("fault plan"), "{chaotic}");
        assert_eq!(digest_of(&clean), digest_of(&chaotic));
    }

    #[test]
    fn fault_tolerance_option_parsing() {
        let options = parse_serve_options(&[
            "--journal".into(),
            "/tmp/x.journal".into(),
            "--fsync".into(),
            "always".into(),
            "--checkpoint-every".into(),
            "5".into(),
            "--compact-every".into(),
            "64".into(),
            "--heartbeat-ms".into(),
            "250".into(),
            "--idle-timeout-ms".into(),
            "900".into(),
            "--fault-plan".into(),
            "seed=1,drop=0.5".into(),
        ])
        .expect("valid options");
        assert_eq!(
            options.journal.as_deref(),
            Some(std::path::Path::new("/tmp/x.journal"))
        );
        assert!(matches!(options.fsync, FsyncPolicy::Always));
        assert_eq!(options.checkpoint_every, 5);
        assert_eq!(options.compact_every, 64);
        assert_eq!(options.heartbeat_ms, 250);
        assert_eq!(options.idle_timeout_ms, 900);
        assert!(options.fault_plan.is_some());
        assert!(matches!(
            parse_serve_options(&["--fault-plan".into(), "drop=2.0".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_serve_options(&["--fsync".into(), "0".into()]),
            Err(CliError::Usage(_))
        ));
        let options =
            parse_run_options(&["--remote".into(), "--fault-plan".into(), "seed=2,dup=0.1".into()])
                .expect("valid options");
        assert!(options.remote);
        assert!(options.fault_plan.is_some());
        let options = parse_client_options(&["--fault-plan".into(), "seed=3,drop=0.1".into()])
            .expect("valid options");
        assert!(options.fault_plan.is_some());
    }

    #[test]
    fn run_incremental_matches_full_run_statistics() {
        let full = run(
            MINI,
            &RunOptions {
                seed: 1,
                max_operations: 500,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        let incremental = run(
            MINI,
            &RunOptions {
                seed: 1,
                max_operations: 500,
                propagation: PropagationKind::Incremental,
                ..RunOptions::default()
            },
        )
        .expect("valid scenario");
        assert!(incremental.contains("completed = true"), "{incremental}");
        // Same seed, same decisions: only the evaluation counts may differ.
        let ops = |report: &str| {
            report
                .lines()
                .find(|l| l.starts_with("operations:"))
                .map(str::to_owned)
        };
        assert_eq!(ops(&full), ops(&incremental));
    }
}
