//! Property-based grammar tests: any AST the strategies can generate must
//! survive `to_source` → `parse` unchanged. This pins the pretty-printer
//! and the parser to the same language.

use adpm_dddl::ast::*;
use adpm_dddl::{parse, to_source};
use proptest::prelude::*;

/// Plain identifiers the lexer keeps whole.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}(-[a-z0-9]{1,4}){0,2}"
}

/// Arbitrary names, including ones that need quoting.
fn any_name() -> impl Strategy<Value = String> {
    prop_oneof![
        ident(),
        "[A-Za-z+ ()0-9]{1,12}".prop_filter("non-empty trimmed", |s| {
            !s.trim().is_empty() && *s == s.trim()
        }),
    ]
}

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_map(|x| (x * 1e6).round() / 1e6)
}

fn domain_decl() -> impl Strategy<Value = DomainDecl> {
    prop_oneof![
        (finite_f64(), finite_f64()).prop_map(|(a, b)| DomainDecl::Interval(a.min(b), a.max(b))),
        proptest::collection::vec(finite_f64(), 1..5).prop_map(DomainDecl::Set),
        proptest::collection::vec(ident(), 1..4).prop_map(DomainDecl::Choice),
        Just(DomainDecl::Bool),
    ]
}

fn prop_ref(objects: Vec<(String, Vec<String>)>) -> impl Strategy<Value = PropRef> {
    let pairs: Vec<PropRef> = objects
        .iter()
        .flat_map(|(o, props)| {
            props.iter().map(move |p| PropRef {
                object: o.clone(),
                property: p.clone(),
            })
        })
        .collect();
    proptest::sample::select(pairs)
}

fn expr_ast(objects: Vec<(String, Vec<String>)>) -> impl Strategy<Value = ExprAst> {
    let leaf = prop_oneof![
        finite_f64().prop_map(ExprAst::Num),
        prop_ref(objects).prop_map(ExprAst::Ref),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| ExprAst::Neg(Box::new(e))),
            (
                prop_oneof![
                    Just(UnaryFn::Sqrt),
                    Just(UnaryFn::Abs),
                    Just(UnaryFn::Exp),
                    Just(UnaryFn::Ln)
                ],
                inner.clone()
            )
                .prop_map(|(f, e)| ExprAst::Unary(f, Box::new(e))),
            (
                prop_oneof![Just(Binary2Fn::Min), Just(Binary2Fn::Max)],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(f, a, b)| ExprAst::Binary2(f, Box::new(a), Box::new(b))),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| ExprAst::Bin(op, Box::new(a), Box::new(b))),
            (inner, 0..5i32).prop_map(|(e, n)| ExprAst::Pow(Box::new(e), n)),
        ]
    })
}

fn scenario_ast() -> impl Strategy<Value = ScenarioAst> {
    // Objects with unique names and unique property names per object.
    let objects = proptest::collection::btree_map(
        any_name(),
        proptest::collection::btree_map(ident(), domain_decl(), 1..4),
        1..3,
    );
    objects.prop_flat_map(|object_map| {
        let objects: Vec<ObjectDecl> = object_map
            .iter()
            .map(|(name, props)| ObjectDecl {
                name: name.clone(),
                properties: props
                    .iter()
                    .map(|(pname, dom)| PropertyDecl {
                        name: pname.clone(),
                        domain: dom.clone(),
                        units: None,
                        levels: Vec::new(),
                        init: None,
                    })
                    .collect(),
            })
            .collect();
        let refs: Vec<(String, Vec<String>)> = objects
            .iter()
            .map(|o| {
                (
                    o.name.clone(),
                    o.properties.iter().map(|p| p.name.clone()).collect(),
                )
            })
            .collect();
        let constraint = (
            expr_ast(refs.clone()),
            prop_oneof![
                Just(RelOp::Le),
                Just(RelOp::Lt),
                Just(RelOp::Ge),
                Just(RelOp::Gt),
                Just(RelOp::Eq)
            ],
            expr_ast(refs.clone()),
            proptest::collection::vec(
                (any::<bool>(), prop_ref(refs.clone())).prop_map(|(increasing, property)| {
                    MonoDecl {
                        increasing,
                        property,
                    }
                }),
                0..3,
            ),
        );
        let constraints = proptest::collection::btree_map(
            ident(),
            (constraint, any::<bool>()),
            0..4,
        )
        .prop_map(|map| -> Vec<ConstraintDecl> {
            map.into_iter()
                .map(|(name, ((lhs, rel, rhs, monotonic), soft))| ConstraintDecl {
                    name,
                    soft,
                    lhs,
                    rel,
                    rhs,
                    monotonic,
                })
                .collect()
        });
        (Just(objects), constraints).prop_map(|(objects, constraints)| ScenarioAst {
            objects,
            constraints,
            problems: Vec::new(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_scenarios_reparse_to_a_fixed_point(ast in scenario_ast()) {
        // One print+parse normalizes (e.g. Neg(Num(x)) folds to Num(-x));
        // after that the representation must be a fixed point.
        let printed = to_source(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nsource:\n{printed}"));
        let printed2 = to_source(&reparsed);
        let reparsed2 = parse(&printed2)
            .unwrap_or_else(|e| panic!("second re-parse failed: {e}\nsource:\n{printed2}"));
        prop_assert_eq!(&reparsed, &reparsed2);
        prop_assert_eq!(printed2, to_source(&reparsed2));
    }

    #[test]
    fn printing_is_deterministic(ast in scenario_ast()) {
        prop_assert_eq!(to_source(&ast), to_source(&ast));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Robustness: arbitrary byte soup must produce an `Err`, never a panic
    /// (lexer and parser are total functions over strings).
    #[test]
    fn arbitrary_input_never_panics(garbage in "\\PC{0,120}") {
        let _ = parse(&garbage);
    }

    /// Near-miss DDDL (valid tokens, random order) must also fail cleanly.
    #[test]
    fn shuffled_tokens_never_panic(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "object", "property", "constraint", "problem", "under", "after",
                "interval", "set", "choice", "bool", "units", "levels", "init",
                "monotonic", "increasing", "decreasing", "in", "outputs",
                "inputs", "constraints", "designer", "x", "o", "1.5", "(", ")",
                "{", "}", "[", "]", ":", ";", ",", ".", "+", "-", "*", "/",
                "^", "<=", ">=", "==", "\"s\"",
            ]),
            0..40,
        )
    ) {
        let source = words.join(" ");
        let _ = parse(&source);
    }
}
