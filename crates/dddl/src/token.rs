//! Lexer for the DDDL design-description language.
//!
//! DDDL (paper §3.1.2, after Sutton & Director's description language) lets
//! a scenario author declare property types, constraints, problems,
//! decompositions, and constraint monotonicity. The token stream carries
//! line/column positions for error reporting.

use crate::error::{DddlError, Position};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`property`, `Diff_pair_W`, ...).
    Ident(String),
    /// A double-quoted string literal (quotes removed, escapes resolved).
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    EqEq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Number(x) => write!(f, "{x}"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::Colon => f.write_str(":"),
            Token::Semicolon => f.write_str(";"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Caret => f.write_str("^"),
            Token::Le => f.write_str("<="),
            Token::Lt => f.write_str("<"),
            Token::Ge => f.write_str(">="),
            Token::Gt => f.write_str(">"),
            Token::EqEq => f.write_str("=="),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it begins in the source text.
    pub position: Position,
}

/// Tokenizes DDDL source text.
///
/// Comments run from `//` to end of line. Identifiers may contain ASCII
/// letters, digits, `_` and `-` (but must start with a letter, and a `-`
/// must be followed by an alphanumeric to stay inside the identifier —
/// `beam-len` lexes as one identifier while `a - b` is a subtraction).
///
/// # Errors
///
/// Returns [`DddlError::Lex`] on unterminated strings, malformed numbers,
/// or unexpected characters.
///
/// # Examples
///
/// ```
/// use adpm_dddl::token::{tokenize, Token};
/// let tokens = tokenize("property beam-len : interval(5, 20);")?;
/// assert_eq!(tokens[1].token, Token::Ident("beam-len".into()));
/// # Ok::<(), adpm_dddl::DddlError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, DddlError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, c: char| {
        *i += 1;
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let position = Position { line, column: col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col, c);
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    let ch = chars[i];
                    advance(&mut i, &mut line, &mut col, ch);
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col, c);
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None | Some('\n') => {
                            return Err(DddlError::Lex {
                                position,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some('"') => {
                            advance(&mut i, &mut line, &mut col, '"');
                            break;
                        }
                        Some('\\') if chars.get(i + 1) == Some(&'"') => {
                            s.push('"');
                            advance(&mut i, &mut line, &mut col, '\\');
                            advance(&mut i, &mut line, &mut col, '"');
                        }
                        Some(&ch) => {
                            s.push(ch);
                            advance(&mut i, &mut line, &mut col, ch);
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    position,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&ch) = chars.get(i) {
                    if ch.is_ascii_digit() || ch == '.' {
                        s.push(ch);
                        advance(&mut i, &mut line, &mut col, ch);
                    } else if (ch == 'e' || ch == 'E')
                        && chars
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                            .unwrap_or(false)
                    {
                        s.push(ch);
                        advance(&mut i, &mut line, &mut col, ch);
                        let sign = chars[i];
                        if sign == '-' || sign == '+' {
                            s.push(sign);
                            advance(&mut i, &mut line, &mut col, sign);
                        }
                    } else {
                        break;
                    }
                }
                let value: f64 = s.parse().map_err(|_| DddlError::Lex {
                    position,
                    message: format!("malformed number `{s}`"),
                })?;
                tokens.push(Spanned {
                    token: Token::Number(value),
                    position,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.get(i) {
                    let keep = ch.is_ascii_alphanumeric()
                        || ch == '_'
                        || (ch == '-'
                            && chars
                                .get(i + 1)
                                .map(|n| n.is_ascii_alphanumeric() || *n == '_')
                                .unwrap_or(false));
                    if keep {
                        s.push(ch);
                        advance(&mut i, &mut line, &mut col, ch);
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(s),
                    position,
                });
            }
            '<' => {
                advance(&mut i, &mut line, &mut col, c);
                if chars.get(i) == Some(&'=') {
                    advance(&mut i, &mut line, &mut col, '=');
                    tokens.push(Spanned {
                        token: Token::Le,
                        position,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        position,
                    });
                }
            }
            '>' => {
                advance(&mut i, &mut line, &mut col, c);
                if chars.get(i) == Some(&'=') {
                    advance(&mut i, &mut line, &mut col, '=');
                    tokens.push(Spanned {
                        token: Token::Ge,
                        position,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        position,
                    });
                }
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                advance(&mut i, &mut line, &mut col, '=');
                advance(&mut i, &mut line, &mut col, '=');
                tokens.push(Spanned {
                    token: Token::EqEq,
                    position,
                });
            }
            _ => {
                let token = match c {
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ':' => Token::Colon,
                    ';' => Token::Semicolon,
                    ',' => Token::Comma,
                    '.' => Token::Dot,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '/' => Token::Slash,
                    '^' => Token::Caret,
                    other => {
                        return Err(DddlError::Lex {
                            position,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                };
                advance(&mut i, &mut line, &mut col, c);
                tokens.push(Spanned { token, position });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            kinds("{ } ( ) [ ] : ; , . + - * / ^"),
            vec![
                Token::LBrace,
                Token::RBrace,
                Token::LParen,
                Token::RParen,
                Token::LBracket,
                Token::RBracket,
                Token::Colon,
                Token::Semicolon,
                Token::Comma,
                Token::Dot,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Caret,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("<= < >= > =="),
            vec![Token::Le, Token::Lt, Token::Ge, Token::Gt, Token::EqEq]
        );
    }

    #[test]
    fn identifiers_may_contain_dashes_but_subtraction_survives() {
        assert_eq!(
            kinds("beam-len"),
            vec![Token::Ident("beam-len".into())]
        );
        assert_eq!(
            kinds("a - b"),
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Ident("b".into()),
            ]
        );
        // A dash glued to the left operand but followed by space stays a minus.
        assert_eq!(
            kinds("a- b"),
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn numbers_with_decimals_and_exponents() {
        assert_eq!(kinds("0.5"), vec![Token::Number(0.5)]);
        assert_eq!(kinds("2e3"), vec![Token::Number(2000.0)]);
        assert_eq!(kinds("1.5e-2"), vec![Token::Number(0.015)]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""LNA+Mixer" "say \"hi\"""#),
            vec![
                Token::Str("LNA+Mixer".into()),
                Token::Str("say \"hi\"".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment with ; tokens\nb"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let tokens = tokenize("a\n  b").unwrap();
        assert_eq!(tokens[0].position, Position { line: 1, column: 1 });
        assert_eq!(tokens[1].position, Position { line: 2, column: 3 });
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("\"oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("@").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }
}
