//! Recursive-descent parser for DDDL.
//!
//! Grammar (EBNF, `//` comments allowed anywhere):
//!
//! ```text
//! scenario     := (object | constraint | problem)*
//! object       := "object" name "{" property* "}"
//! property     := "property" name ":" domain opt* ";"
//! domain       := "interval" "(" num "," num ")"
//!               | "set" "(" num ("," num)* ")"
//!               | "choice" "(" name ("," name)* ")"
//!               | "bool"
//! opt          := "units" string | "levels" "[" name ("," name)* "]"
//!               | "init" num
//! constraint   := ["soft"] "constraint" name ":" expr rel expr [mono] ";"
//! rel          := "<=" | "<" | ">=" | ">" | "=="
//! mono         := "monotonic" monoitem ("," monoitem)*
//! monoitem     := ("increasing" | "decreasing") "in" propref
//! expr         := term (("+" | "-") term)*
//! term         := pow (("*" | "/") pow)*
//! pow          := factor ["^" int]
//! factor       := num | propref | "(" expr ")" | "-" factor
//!               | ("sqrt"|"abs"|"exp"|"ln") "(" expr ")"
//!               | ("min"|"max") "(" expr "," expr ")"
//! propref      := name "." name
//! problem      := "problem" name ["under" name] ["after" name ("," name)*]
//!                 "{" pitem* "}"
//! pitem        := "outputs" ":" propref ("," propref)* ";"
//!               | "inputs" ":" propref ("," propref)* ";"
//!               | "constraints" ":" name ("," name)* ";"
//!               | "designer" num ";"
//! name         := IDENT | STRING
//! ```

use crate::ast::*;
use crate::error::{DddlError, Position};
use crate::token::{tokenize, Spanned, Token};

/// Parses DDDL source text into a [`ScenarioAst`].
///
/// # Errors
///
/// Returns [`DddlError::Lex`] or [`DddlError::Parse`] with a source
/// position when the text is malformed.
///
/// # Examples
///
/// ```
/// use adpm_dddl::parse;
/// let ast = parse(r#"
///     object Filter {
///         property beam-len : interval(5, 20) units "um";
///     }
///     constraint CenterFreq: 1000.0 / Filter.beam-len >= 50.0
///         monotonic decreasing in Filter.beam-len;
/// "#)?;
/// assert_eq!(ast.objects.len(), 1);
/// assert_eq!(ast.constraints.len(), 1);
/// # Ok::<(), adpm_dddl::DddlError>(())
/// ```
pub fn parse(source: &str) -> Result<ScenarioAst, DddlError> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.scenario()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn scenario(&mut self) -> Result<ScenarioAst, DddlError> {
        let mut ast = ScenarioAst::default();
        while let Some(t) = self.peek() {
            match t {
                Token::Ident(kw) if kw == "object" => ast.objects.push(self.object()?),
                Token::Ident(kw) if kw == "constraint" => {
                    ast.constraints.push(self.constraint(false)?);
                }
                Token::Ident(kw) if kw == "soft" => {
                    self.advance();
                    ast.constraints.push(self.constraint(true)?);
                }
                Token::Ident(kw) if kw == "problem" => ast.problems.push(self.problem()?),
                other => {
                    return Err(self.error(format!(
                        "expected `object`, `constraint`, `soft constraint`, or `problem`, \
                         found `{other}`"
                    )))
                }
            }
        }
        Ok(ast)
    }

    fn object(&mut self) -> Result<ObjectDecl, DddlError> {
        self.expect_keyword("object")?;
        let name = self.name()?;
        self.expect(&Token::LBrace)?;
        let mut properties = Vec::new();
        while !self.eat(&Token::RBrace) {
            properties.push(self.property()?);
        }
        Ok(ObjectDecl { name, properties })
    }

    fn property(&mut self) -> Result<PropertyDecl, DddlError> {
        self.expect_keyword("property")?;
        let name = self.name()?;
        self.expect(&Token::Colon)?;
        let domain = self.domain()?;
        let mut units = None;
        let mut levels = Vec::new();
        let mut init = None;
        loop {
            match self.peek() {
                Some(Token::Ident(kw)) if kw == "units" => {
                    self.advance();
                    units = Some(self.name()?);
                }
                Some(Token::Ident(kw)) if kw == "levels" => {
                    self.advance();
                    self.expect(&Token::LBracket)?;
                    loop {
                        levels.push(self.name()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RBracket)?;
                }
                Some(Token::Ident(kw)) if kw == "init" => {
                    self.advance();
                    init = Some(self.signed_number()?);
                }
                _ => break,
            }
        }
        self.expect(&Token::Semicolon)?;
        Ok(PropertyDecl {
            name,
            domain,
            units,
            levels,
            init,
        })
    }

    fn domain(&mut self) -> Result<DomainDecl, DddlError> {
        let kw = self.name()?;
        match kw.as_str() {
            "interval" => {
                self.expect(&Token::LParen)?;
                let lo = self.signed_number()?;
                self.expect(&Token::Comma)?;
                let hi = self.signed_number()?;
                self.expect(&Token::RParen)?;
                Ok(DomainDecl::Interval(lo, hi))
            }
            "set" => {
                self.expect(&Token::LParen)?;
                let mut values = vec![self.signed_number()?];
                while self.eat(&Token::Comma) {
                    values.push(self.signed_number()?);
                }
                self.expect(&Token::RParen)?;
                Ok(DomainDecl::Set(values))
            }
            "choice" => {
                self.expect(&Token::LParen)?;
                let mut values = vec![self.name()?];
                while self.eat(&Token::Comma) {
                    values.push(self.name()?);
                }
                self.expect(&Token::RParen)?;
                Ok(DomainDecl::Choice(values))
            }
            "bool" => Ok(DomainDecl::Bool),
            other => Err(self.error(format!(
                "expected `interval`, `set`, `choice`, or `bool`, found `{other}`"
            ))),
        }
    }

    fn constraint(&mut self, soft: bool) -> Result<ConstraintDecl, DddlError> {
        self.expect_keyword("constraint")?;
        let name = self.name()?;
        self.expect(&Token::Colon)?;
        let lhs = self.expr()?;
        let rel = self.relop()?;
        let rhs = self.expr()?;
        let mut monotonic = Vec::new();
        if matches!(self.peek(), Some(Token::Ident(kw)) if kw == "monotonic") {
            self.advance();
            loop {
                let dir = self.name()?;
                let increasing = match dir.as_str() {
                    "increasing" => true,
                    "decreasing" => false,
                    other => {
                        return Err(self.error(format!(
                            "expected `increasing` or `decreasing`, found `{other}`"
                        )))
                    }
                };
                self.expect_keyword("in")?;
                let property = self.propref()?;
                monotonic.push(MonoDecl {
                    increasing,
                    property,
                });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::Semicolon)?;
        Ok(ConstraintDecl {
            name,
            soft,
            lhs,
            rel,
            rhs,
            monotonic,
        })
    }

    fn relop(&mut self) -> Result<RelOp, DddlError> {
        let rel = match self.peek() {
            Some(Token::Le) => RelOp::Le,
            Some(Token::Lt) => RelOp::Lt,
            Some(Token::Ge) => RelOp::Ge,
            Some(Token::Gt) => RelOp::Gt,
            Some(Token::EqEq) => RelOp::Eq,
            other => {
                return Err(self.error(format!(
                    "expected a comparison operator, found `{}`",
                    other.map(|t| t.to_string()).unwrap_or_default()
                )))
            }
        };
        self.advance();
        Ok(rel)
    }

    fn expr(&mut self) -> Result<ExprAst, DddlError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = ExprAst::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<ExprAst, DddlError> {
        let mut lhs = self.pow()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.pow()?;
            lhs = ExprAst::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pow(&mut self) -> Result<ExprAst, DddlError> {
        let base = self.factor()?;
        if self.eat(&Token::Caret) {
            let n = self.signed_number()?;
            if n.fract() != 0.0 || n < 0.0 || n > i32::MAX as f64 {
                return Err(self.error(format!("exponent must be a non-negative integer, got {n}")));
            }
            Ok(ExprAst::Pow(Box::new(base), n as i32))
        } else {
            Ok(base)
        }
    }

    fn factor(&mut self) -> Result<ExprAst, DddlError> {
        match self.peek().cloned() {
            Some(Token::Number(x)) => {
                self.advance();
                Ok(ExprAst::Num(x))
            }
            Some(Token::Minus) => {
                self.advance();
                // Fold unary minus on a literal so `-3` is the literal -3,
                // keeping ASTs canonical for the pretty-print round-trip.
                Ok(match self.factor()? {
                    ExprAst::Num(x) => ExprAst::Num(-x),
                    other => ExprAst::Neg(Box::new(other)),
                })
            }
            Some(Token::LParen) => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(kw))
                if matches!(kw.as_str(), "sqrt" | "abs" | "exp" | "ln")
                    && self.peek_at(1) == Some(&Token::LParen) =>
            {
                self.advance();
                self.expect(&Token::LParen)?;
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                let f = match kw.as_str() {
                    "sqrt" => UnaryFn::Sqrt,
                    "abs" => UnaryFn::Abs,
                    "exp" => UnaryFn::Exp,
                    _ => UnaryFn::Ln,
                };
                Ok(ExprAst::Unary(f, Box::new(inner)))
            }
            Some(Token::Ident(kw))
                if matches!(kw.as_str(), "min" | "max")
                    && self.peek_at(1) == Some(&Token::LParen) =>
            {
                self.advance();
                self.expect(&Token::LParen)?;
                let a = self.expr()?;
                self.expect(&Token::Comma)?;
                let b = self.expr()?;
                self.expect(&Token::RParen)?;
                let f = if kw == "min" {
                    Binary2Fn::Min
                } else {
                    Binary2Fn::Max
                };
                Ok(ExprAst::Binary2(f, Box::new(a), Box::new(b)))
            }
            Some(Token::Ident(_)) | Some(Token::Str(_)) => Ok(ExprAst::Ref(self.propref()?)),
            other => Err(self.error(format!(
                "expected an expression, found `{}`",
                other.map(|t| t.to_string()).unwrap_or_default()
            ))),
        }
    }

    fn propref(&mut self) -> Result<PropRef, DddlError> {
        let object = self.name()?;
        self.expect(&Token::Dot)?;
        let property = self.name()?;
        Ok(PropRef { object, property })
    }

    fn problem(&mut self) -> Result<ProblemDecl, DddlError> {
        self.expect_keyword("problem")?;
        let name = self.name()?;
        let parent = if matches!(self.peek(), Some(Token::Ident(kw)) if kw == "under") {
            self.advance();
            Some(self.name()?)
        } else {
            None
        };
        let mut after = Vec::new();
        if matches!(self.peek(), Some(Token::Ident(kw)) if kw == "after") {
            self.advance();
            loop {
                after.push(self.name()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::LBrace)?;
        let mut decl = ProblemDecl {
            name,
            parent,
            after,
            inputs: Vec::new(),
            outputs: Vec::new(),
            constraints: Vec::new(),
            designer: None,
        };
        while !self.eat(&Token::RBrace) {
            let kw = self.name()?;
            match kw.as_str() {
                "outputs" => {
                    self.expect(&Token::Colon)?;
                    loop {
                        decl.outputs.push(self.propref()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::Semicolon)?;
                }
                "inputs" => {
                    self.expect(&Token::Colon)?;
                    loop {
                        decl.inputs.push(self.propref()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::Semicolon)?;
                }
                "constraints" => {
                    self.expect(&Token::Colon)?;
                    loop {
                        decl.constraints.push(self.name()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::Semicolon)?;
                }
                "designer" => {
                    let n = self.signed_number()?;
                    if n.fract() != 0.0 || n < 0.0 {
                        return Err(self.error(format!(
                            "designer index must be a non-negative integer, got {n}"
                        )));
                    }
                    decl.designer = Some(n as u32);
                    self.expect(&Token::Semicolon)?;
                }
                other => {
                    return Err(self.error(format!(
                        "expected `outputs`, `inputs`, `constraints`, or `designer`, found `{other}`"
                    )))
                }
            }
        }
        Ok(decl)
    }

    // --- token plumbing -------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn position(&self) -> Option<Position> {
        self.tokens.get(self.pos).map(|s| s.position)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), DddlError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{token}`, found `{}`",
                self.peek().map(|t| t.to_string()).unwrap_or_default()
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DddlError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.advance();
                Ok(())
            }
            other => Err(self.error(format!(
                "expected `{kw}`, found `{}`",
                other.map(|t| t.to_string()).unwrap_or_default()
            ))),
        }
    }

    /// A name: bare identifier or quoted string.
    fn name(&mut self) -> Result<String, DddlError> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.advance();
                Ok(s)
            }
            Some(Token::Str(s)) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!(
                "expected a name, found `{}`",
                other.map(|t| t.to_string()).unwrap_or_default()
            ))),
        }
    }

    fn signed_number(&mut self) -> Result<f64, DddlError> {
        let negative = self.eat(&Token::Minus);
        match self.peek().cloned() {
            Some(Token::Number(x)) => {
                self.advance();
                Ok(if negative { -x } else { x })
            }
            other => Err(self.error(format!(
                "expected a number, found `{}`",
                other.map(|t| t.to_string()).unwrap_or_default()
            ))),
        }
    }

    fn error(&self, message: String) -> DddlError {
        DddlError::Parse {
            position: self.position(),
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_object_with_all_property_options() {
        let ast = parse(
            r#"
            object "LNA+Mixer" {
                property Diff-pair-W : interval(0.5, 10) units "um"
                    levels [Transistor, Geometry];
                property n-stages : set(1, 2, 3);
                property level : choice(Transistor, Geometry);
                property shielded : bool;
                property P-max : interval(0, 300) init 200;
            }
            "#,
        )
        .unwrap();
        assert_eq!(ast.objects.len(), 1);
        let obj = &ast.objects[0];
        assert_eq!(obj.name, "LNA+Mixer");
        assert_eq!(obj.properties.len(), 5);
        assert_eq!(obj.properties[0].units.as_deref(), Some("um"));
        assert_eq!(obj.properties[0].levels, vec!["Transistor", "Geometry"]);
        assert_eq!(obj.properties[1].domain, DomainDecl::Set(vec![1.0, 2.0, 3.0]));
        assert_eq!(
            obj.properties[2].domain,
            DomainDecl::Choice(vec!["Transistor".into(), "Geometry".into()])
        );
        assert_eq!(obj.properties[3].domain, DomainDecl::Bool);
        assert_eq!(obj.properties[4].init, Some(200.0));
    }

    #[test]
    fn parses_soft_constraint_modifier() {
        let ast = parse(
            r#"
            object o { property x : interval(0, 1); }
            soft constraint pref: o.x <= 0.5;
            constraint hard: o.x >= 0;
            "#,
        )
        .unwrap();
        assert!(ast.constraints[0].soft);
        assert!(!ast.constraints[1].soft);
        // `soft` must be followed by `constraint`.
        assert!(parse("soft object o { }").is_err());
    }

    #[test]
    fn parses_constraint_with_precedence() {
        let ast = parse(
            r#"
            object o { property x : interval(0, 1); property y : interval(0, 1); }
            constraint c: o.x + o.y * 2 <= 5;
            "#,
        )
        .unwrap();
        let c = &ast.constraints[0];
        // x + (y * 2), not (x + y) * 2
        match &c.lhs {
            ExprAst::Bin(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.as_ref(), ExprAst::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected lhs: {other:?}"),
        }
        assert_eq!(c.rel, RelOp::Le);
    }

    #[test]
    fn parses_functions_powers_and_negation() {
        let ast = parse(
            r#"
            object o { property x : interval(0.1, 1); }
            constraint c: sqrt(o.x) + abs(-o.x) + exp(o.x) + ln(o.x)
                          + min(o.x, 1) + max(o.x, 0) + o.x^2 <= 100;
            "#,
        )
        .unwrap();
        assert_eq!(ast.constraints.len(), 1);
    }

    #[test]
    fn parses_monotonic_clauses_like_the_paper() {
        // Mirrors the paper's filter-loss example: decreasing in resonator
        // length, increasing in beam width.
        let ast = parse(
            r#"
            object Filter {
                property res-len : interval(5, 20);
                property beam-w : interval(1, 4);
            }
            constraint FilterLoss: 100 / Filter.res-len - Filter.beam-w <= 10
                monotonic decreasing in Filter.res-len,
                          increasing in Filter.beam-w;
            "#,
        )
        .unwrap();
        let mono = &ast.constraints[0].monotonic;
        assert_eq!(mono.len(), 2);
        assert!(!mono[0].increasing);
        assert_eq!(mono[0].property.property, "res-len");
        assert!(mono[1].increasing);
    }

    #[test]
    fn parses_problem_hierarchy() {
        let ast = parse(
            r#"
            object o { property x : interval(0, 1); property y : interval(0, 1); }
            constraint c: o.x <= o.y;
            problem top { constraints: c; }
            problem analog under top { outputs: o.x; designer 0; }
            problem filter under top { outputs: o.y; inputs: o.x; designer 1; }
            "#,
        )
        .unwrap();
        assert_eq!(ast.problems.len(), 3);
        assert_eq!(ast.problems[0].parent, None);
        assert_eq!(ast.problems[1].parent.as_deref(), Some("top"));
        assert_eq!(ast.problems[1].designer, Some(0));
        assert_eq!(ast.problems[2].inputs.len(), 1);
        assert_eq!(ast.problems[0].constraints, vec!["c"]);
    }

    #[test]
    fn parses_problem_ordering() {
        let ast = parse(
            r#"
            object o { property x : interval(0, 1); property y : interval(0, 1); }
            problem top { }
            problem a under top { outputs: o.x; designer 0; }
            problem b under top after a { outputs: o.y; designer 1; }
            "#,
        )
        .unwrap();
        assert!(ast.problems[1].after.is_empty());
        assert_eq!(ast.problems[2].after, vec!["a"]);
    }

    #[test]
    fn relational_operators_all_parse() {
        for (src, rel) in [
            ("<=", RelOp::Le),
            ("<", RelOp::Lt),
            (">=", RelOp::Ge),
            (">", RelOp::Gt),
            ("==", RelOp::Eq),
        ] {
            let ast = parse(&format!(
                "object o {{ property x : interval(0, 1); }} constraint c: o.x {src} 1;"
            ))
            .unwrap();
            assert_eq!(ast.constraints[0].rel, rel);
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("object o { property x }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error at 1:"), "{msg}");
    }

    #[test]
    fn error_on_bad_exponent() {
        let err = parse(
            "object o { property x : interval(0, 1); } constraint c: o.x ^ 1.5 <= 1;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("exponent"));
    }

    #[test]
    fn error_at_end_of_input() {
        let err = parse("object o {").unwrap_err();
        assert!(err.to_string().contains("end of input"));
    }

    #[test]
    fn empty_source_is_an_empty_scenario() {
        let ast = parse("  // nothing here\n").unwrap();
        assert!(ast.objects.is_empty());
    }
}
