//! # adpm-dddl
//!
//! The DDDL design-description language used to configure TeamSim scenarios
//! (paper §3.1.2, after Sutton & Director's design-process description
//! language). A scenario declares design objects with typed properties,
//! constraints (optionally with monotonicity clauses, exactly like the
//! paper's filter-loss example), and a problem hierarchy with designer
//! assignments.
//!
//! ```
//! use adpm_dddl::compile_source;
//! use adpm_core::DpmConfig;
//!
//! let scenario = compile_source(r#"
//!     object Filter {
//!         property res-len : interval(5, 20) units "um";
//!         property beam-w  : interval(1, 4);
//!     }
//!     constraint FilterLoss: 100 / Filter.res-len - Filter.beam-w <= 10
//!         monotonic decreasing in Filter.res-len,
//!                   increasing in Filter.beam-w;
//!     problem filter { outputs: Filter.res-len, Filter.beam-w;
//!                      constraints: FilterLoss; designer 0; }
//! "#)?;
//! let dpm = scenario.build_dpm(DpmConfig::adpm());
//! assert_eq!(dpm.problems().len(), 1);
//! # Ok::<(), adpm_dddl::DddlError>(())
//! ```
//!
//! The pipeline is [`token`] (lexing) → [`parse`] (AST) → [`compile`]
//! (name resolution + lowering into an
//! [`adpm_constraint::ConstraintNetwork`]) → [`CompiledScenario::build_dpm`]
//! (a fresh [`adpm_core::DesignProcessManager`] per simulation run). A
//! built DPM can be instrumented before use — see
//! [`adpm_core::DesignProcessManager::set_sink`] and
//! `docs/OBSERVABILITY.md` — so every compiled scenario is traceable
//! without DDDL-level changes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod compile;
mod error;
mod parser;
mod pretty;
pub mod token;

pub use compile::{compile, compile_source, CompiledScenario};
pub use error::{DddlError, Position};
pub use parser::parse;
pub use pretty::to_source;
