//! Errors for DDDL lexing, parsing, and compilation.

use adpm_constraint::NetworkError;
use std::error::Error;
use std::fmt;

/// A line/column position in DDDL source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while processing DDDL source.
#[derive(Debug, Clone, PartialEq)]
pub enum DddlError {
    /// Lexical error (bad character, unterminated string, ...).
    Lex {
        /// Where the problem starts.
        position: Position,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where the problem starts (or end of input).
        position: Option<Position>,
        /// What went wrong.
        message: String,
    },
    /// Semantic error during compilation (unknown names, type problems).
    Compile {
        /// What went wrong.
        message: String,
    },
    /// An underlying constraint-network error.
    Network(NetworkError),
}

impl fmt::Display for DddlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DddlError::Lex { position, message } => write!(f, "lex error at {position}: {message}"),
            DddlError::Parse { position, message } => match position {
                Some(p) => write!(f, "parse error at {p}: {message}"),
                None => write!(f, "parse error at end of input: {message}"),
            },
            DddlError::Compile { message } => write!(f, "compile error: {message}"),
            DddlError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for DddlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DddlError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for DddlError {
    fn from(e: NetworkError) -> Self {
        DddlError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = DddlError::Lex {
            position: Position { line: 3, column: 7 },
            message: "bad".into(),
        };
        assert_eq!(e.to_string(), "lex error at 3:7: bad");
        let e = DddlError::Parse {
            position: None,
            message: "eof".into(),
        };
        assert!(e.to_string().contains("end of input"));
    }

    #[test]
    fn network_errors_convert_and_chain() {
        let inner = NetworkError::UnknownProperty(adpm_constraint::PropertyId::new(0));
        let e = DddlError::from(inner.clone());
        assert!(e.to_string().contains("unknown property"));
        assert!(Error::source(&e).is_some());
        assert_eq!(e, DddlError::Network(inner));
    }
}
