//! Abstract syntax tree for DDDL scenario descriptions.

/// A complete scenario description: objects (with properties), constraints,
/// and the problem hierarchy with designer assignments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioAst {
    /// Design objects in declaration order.
    pub objects: Vec<ObjectDecl>,
    /// Constraints in declaration order.
    pub constraints: Vec<ConstraintDecl>,
    /// Problems in declaration order (parents before children).
    pub problems: Vec<ProblemDecl>,
}

/// `object <name> { property ...; }`
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDecl {
    /// Design object name, e.g. `LNA+Mixer`.
    pub name: String,
    /// The object's properties.
    pub properties: Vec<PropertyDecl>,
}

/// `property <name> : <domain> [units "..."] [levels [...]] [init <num>];`
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDecl {
    /// Property name, unique within the object.
    pub name: String,
    /// The declared value range `E_i`.
    pub domain: DomainDecl,
    /// Optional unit label.
    pub units: Option<String>,
    /// Optional abstraction levels (paper Fig. 2).
    pub levels: Vec<String>,
    /// Optional initial binding (used for top-level requirements).
    pub init: Option<f64>,
}

/// A property's declared value range.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainDecl {
    /// `interval(lo, hi)` — continuous range.
    Interval(f64, f64),
    /// `set(v1, v2, ...)` — finite numeric menu.
    Set(Vec<f64>),
    /// `choice("a", "b", ...)` — finite symbolic menu.
    Choice(Vec<String>),
    /// `bool` — boolean flag.
    Bool,
}

/// A reference to `object.property`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PropRef {
    /// The owning object's name.
    pub object: String,
    /// The property's name.
    pub property: String,
}

impl std::fmt::Display for PropRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.object, self.property)
    }
}

/// Comparison operator in a constraint declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

/// `[soft] constraint <name>: <expr> <rel> <expr> [monotonic ...];`
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDecl {
    /// Constraint name (referenced from problem declarations).
    pub name: String,
    /// Whether the constraint was declared `soft` — a preference a
    /// negotiation round may drop, not a hard requirement.
    pub soft: bool,
    /// Left-hand expression.
    pub lhs: ExprAst,
    /// Comparison operator.
    pub rel: RelOp,
    /// Right-hand expression.
    pub rhs: ExprAst,
    /// Declared monotonicity clauses.
    pub monotonic: Vec<MonoDecl>,
}

/// One `increasing in x` / `decreasing in x` clause. Matches the paper's
/// example: "filter loss constraints are monotonic decreasing in the
/// resonator length, but are monotonic increasing in the beam width" —
/// i.e. moving the named property in the stated direction helps satisfy
/// the constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct MonoDecl {
    /// `true` for `increasing` (raising the value helps), `false` for
    /// `decreasing`.
    pub increasing: bool,
    /// The property the clause talks about.
    pub property: PropRef,
}

/// Arithmetic expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Numeric literal.
    Num(f64),
    /// Property reference.
    Ref(PropRef),
    /// Unary negation.
    Neg(Box<ExprAst>),
    /// `sqrt(e)` / `abs(e)` / `exp(e)` / `ln(e)`.
    Unary(UnaryFn, Box<ExprAst>),
    /// `min(a, b)` / `max(a, b)`.
    Binary2(Binary2Fn, Box<ExprAst>, Box<ExprAst>),
    /// Binary arithmetic.
    Bin(BinOp, Box<ExprAst>, Box<ExprAst>),
    /// Integer power `e ^ n`.
    Pow(Box<ExprAst>, i32),
}

/// Named unary functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryFn {
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Ln,
}

/// Named binary functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binary2Fn {
    /// Pointwise minimum.
    Min,
    /// Pointwise maximum.
    Max,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// `problem <name> [under <parent>] [after <p> (, <p>)*] { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemDecl {
    /// Problem name.
    pub name: String,
    /// Parent problem name for decomposition, if any.
    pub parent: Option<String>,
    /// Problems that must be solved before this one can be addressed —
    /// the paper's "partially-ordered subproblem set".
    pub after: Vec<String>,
    /// Input property references.
    pub inputs: Vec<PropRef>,
    /// Output property references (a solution must bind these).
    pub outputs: Vec<PropRef>,
    /// Names of constraints in the problem's set `T_i`.
    pub constraints: Vec<String>,
    /// The designer index the problem is assigned to, if any.
    pub designer: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propref_displays_dotted() {
        let r = PropRef {
            object: "Filter".into(),
            property: "beam-len".into(),
        };
        assert_eq!(r.to_string(), "Filter.beam-len");
    }

    #[test]
    fn default_scenario_is_empty() {
        let s = ScenarioAst::default();
        assert!(s.objects.is_empty() && s.constraints.is_empty() && s.problems.is_empty());
    }
}
