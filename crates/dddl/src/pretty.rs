//! Pretty-printer: turns a [`ScenarioAst`] back into DDDL source text.
//!
//! Useful for exporting programmatically built scenarios, normalizing
//! hand-written ones, and (in tests) for the parse → print → parse
//! round-trip property that pins the grammar down.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a scenario as DDDL source text that [`crate::parse`] accepts
/// and that parses back to an equivalent AST.
pub fn to_source(ast: &ScenarioAst) -> String {
    let mut out = String::new();
    for object in &ast.objects {
        let _ = writeln!(out, "object {} {{", name(&object.name));
        for p in &object.properties {
            let _ = write!(out, "    property {} : {}", name(&p.name), domain(&p.domain));
            if let Some(units) = &p.units {
                let _ = write!(out, " units \"{}\"", escape(units));
            }
            if !p.levels.is_empty() {
                let levels: Vec<String> = p.levels.iter().map(|l| name(l)).collect();
                let _ = write!(out, " levels [{}]", levels.join(", "));
            }
            if let Some(init) = p.init {
                let _ = write!(out, " init {}", number(init));
            }
            let _ = writeln!(out, ";");
        }
        let _ = writeln!(out, "}}");
    }
    for c in &ast.constraints {
        let _ = write!(
            out,
            "{}constraint {}: {} {} {}",
            if c.soft { "soft " } else { "" },
            name(&c.name),
            expr(&c.lhs),
            rel(c.rel),
            expr(&c.rhs)
        );
        if !c.monotonic.is_empty() {
            let clauses: Vec<String> = c
                .monotonic
                .iter()
                .map(|m| {
                    format!(
                        "{} in {}.{}",
                        if m.increasing { "increasing" } else { "decreasing" },
                        name(&m.property.object),
                        name(&m.property.property)
                    )
                })
                .collect();
            let _ = write!(out, " monotonic {}", clauses.join(", "));
        }
        let _ = writeln!(out, ";");
    }
    for p in &ast.problems {
        let _ = write!(out, "problem {}", name(&p.name));
        if let Some(parent) = &p.parent {
            let _ = write!(out, " under {}", name(parent));
        }
        if !p.after.is_empty() {
            let names: Vec<String> = p.after.iter().map(|a| name(a)).collect();
            let _ = write!(out, " after {}", names.join(", "));
        }
        let _ = writeln!(out, " {{");
        if !p.outputs.is_empty() {
            let _ = writeln!(out, "    outputs: {};", refs(&p.outputs));
        }
        if !p.inputs.is_empty() {
            let _ = writeln!(out, "    inputs: {};", refs(&p.inputs));
        }
        if !p.constraints.is_empty() {
            let names: Vec<String> = p.constraints.iter().map(|c| name(c)).collect();
            let _ = writeln!(out, "    constraints: {};", names.join(", "));
        }
        if let Some(d) = p.designer {
            let _ = writeln!(out, "    designer {d};");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn refs(list: &[PropRef]) -> String {
    list.iter()
        .map(|r| format!("{}.{}", name(&r.object), name(&r.property)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Quotes a name unless it is a plain identifier the lexer keeps whole.
fn name(s: &str) -> String {
    let plain = !s.is_empty()
        && s.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_') == Some(true)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !s.ends_with('-');
    if plain {
        s.to_owned()
    } else {
        format!("\"{}\"", escape(s))
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Prints a number so it re-parses exactly (the lexer has no leading `-` in
/// numeric literals inside expressions, so negatives become unary minus).
fn number(x: f64) -> String {
    if x < 0.0 {
        format!("-{}", fmt_f64(-x))
    } else {
        fmt_f64(x)
    }
}

fn fmt_f64(x: f64) -> String {
    // `{:?}` prints enough digits to round-trip f64 exactly.
    let s = format!("{x:?}");
    s.strip_suffix(".0").map(str::to_owned).unwrap_or(s)
}

fn rel(r: RelOp) -> &'static str {
    match r {
        RelOp::Le => "<=",
        RelOp::Lt => "<",
        RelOp::Ge => ">=",
        RelOp::Gt => ">",
        RelOp::Eq => "==",
    }
}

fn domain(d: &DomainDecl) -> String {
    match d {
        DomainDecl::Interval(lo, hi) => format!("interval({}, {})", number(*lo), number(*hi)),
        DomainDecl::Set(values) => format!(
            "set({})",
            values.iter().map(|v| number(*v)).collect::<Vec<_>>().join(", ")
        ),
        DomainDecl::Choice(values) => format!(
            "choice({})",
            values.iter().map(|v| name(v)).collect::<Vec<_>>().join(", ")
        ),
        DomainDecl::Bool => "bool".to_owned(),
    }
}

/// Fully parenthesized expression printing: correctness over beauty, and
/// guaranteed precedence-safe round-trips.
fn expr(e: &ExprAst) -> String {
    match e {
        ExprAst::Num(x) => {
            if *x < 0.0 {
                format!("({})", number(*x))
            } else {
                number(*x)
            }
        }
        ExprAst::Ref(r) => format!("{}.{}", name(&r.object), name(&r.property)),
        ExprAst::Neg(inner) => format!("(-{})", expr(inner)),
        ExprAst::Unary(f, inner) => {
            let fname = match f {
                UnaryFn::Sqrt => "sqrt",
                UnaryFn::Abs => "abs",
                UnaryFn::Exp => "exp",
                UnaryFn::Ln => "ln",
            };
            format!("{fname}({})", expr(inner))
        }
        ExprAst::Binary2(f, a, b) => {
            let fname = match f {
                Binary2Fn::Min => "min",
                Binary2Fn::Max => "max",
            };
            format!("{fname}({}, {})", expr(a), expr(b))
        }
        ExprAst::Bin(op, a, b) => {
            let symbol = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {} {})", expr(a), symbol, expr(b))
        }
        ExprAst::Pow(base, n) => format!("({} ^ {n})", expr(base)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(source: &str) -> (ScenarioAst, ScenarioAst) {
        let first = parse(source).expect("valid source");
        let printed = to_source(&first);
        let second = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        (first, second)
    }

    #[test]
    fn round_trips_full_feature_scenario() {
        let (a, b) = round_trip(
            r#"
            object "LNA+Mixer" {
                property Diff-pair-W : interval(0.5, 10) units "um"
                    levels [Transistor, Geometry];
                property n-stages : set(1, 2, 3) init 2;
                property mode : choice(fast, "low power");
                property shielded : bool;
            }
            constraint Gain: 20 * sqrt(2 * "LNA+Mixer".Diff-pair-W) >= 48
                monotonic increasing in "LNA+Mixer".Diff-pair-W;
            constraint Mix: min("LNA+Mixer".n-stages, 2)
                + max(abs(-"LNA+Mixer".Diff-pair-W), 1)
                - exp(ln("LNA+Mixer".Diff-pair-W)) / ("LNA+Mixer".n-stages ^ 2) <= 100;
            problem top { constraints: Gain, Mix; designer 0; }
            problem sub under top {
                outputs: "LNA+Mixer".Diff-pair-W, "LNA+Mixer".n-stages;
                inputs: "LNA+Mixer".mode;
                designer 1;
            }
            problem late under top after sub { designer 0; }
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn round_trips_the_embedded_paper_scenarios() {
        for source in [
            adpm_sources::SENSING,
            adpm_sources::RECEIVER,
            adpm_sources::WALKTHROUGH,
        ] {
            let (a, b) = round_trip(source);
            assert_eq!(a, b);
        }
    }

    /// The scenarios crate depends on this crate, so its DDDL sources are
    /// duplicated here (kept deliberately small) purely as round-trip
    /// fodder; the real sources live in `adpm-scenarios` and are tested
    /// there for semantics.
    mod adpm_sources {
        pub const SENSING: &str = r#"
            object system { property req : interval(0.1, 10) init 1.0; }
            object sensor { property s-area : interval(0.5, 6) units "mm2"; }
            constraint MeetArea: sensor.s-area <= system.req * 8;
            problem sensing-system { constraints: MeetArea; designer 0; }
        "#;
        pub const RECEIVER: &str = r#"
            object lna-mixer { property freq-ind : interval(0.05, 0.5) units "uH"; }
            constraint IndGain: 400 * lna-mixer.freq-ind >= 48
                monotonic increasing in lna-mixer.freq-ind;
            problem rx { outputs: lna-mixer.freq-ind; designer 0; }
        "#;
        pub const WALKTHROUGH: &str = r#"
            object Filter { property beam-len : interval(5, 30); }
            constraint FilterLoss: 32.12 - Filter.beam-len <= 25;
            problem mems { outputs: Filter.beam-len; designer 2; }
        "#;
    }

    #[test]
    fn names_are_quoted_only_when_needed() {
        assert_eq!(name("beam-len"), "beam-len");
        assert_eq!(name("LNA+Mixer"), "\"LNA+Mixer\"");
        assert_eq!(name("3rd"), "\"3rd\"");
        assert_eq!(name("trailing-"), "\"trailing-\"");
        assert_eq!(name("with space"), "\"with space\"");
        assert_eq!(name("with\"quote"), "\"with\\\"quote\"");
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.0, 1.5, 0.1234567890123, 1e-9, 2e12, 32.12] {
            let printed = number(x);
            let parsed: f64 = printed.parse().expect("parses");
            assert_eq!(parsed, x, "printed as {printed}");
        }
    }

    #[test]
    fn negative_literals_become_unary_minus() {
        let ast = parse(
            "object o { property x : interval(-5, 5) init -2; } constraint c: o.x >= -4;",
        )
        .expect("valid");
        let printed = to_source(&ast);
        let again = parse(&printed).expect("re-parses");
        assert_eq!(ast, again);
    }

    #[test]
    fn empty_scenario_prints_empty() {
        assert_eq!(to_source(&ScenarioAst::default()), "");
    }
}
