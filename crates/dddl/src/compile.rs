//! Compiles a parsed DDDL scenario into a constraint network and a ready
//! design-process manager.

use crate::ast::*;
use crate::error::DddlError;
use adpm_constraint::{
    expr, ConstraintId, ConstraintNetwork, Domain, HelpsDirection, Property, PropertyId, Relation,
    Value,
};
use adpm_core::{DesignProcessManager, DesignerId, DpmConfig, ProblemId};
use std::collections::HashMap;

/// A compiled scenario: the constraint network plus the name tables needed
/// to assemble design-process managers from it.
///
/// One compiled scenario can build many independent
/// [`DesignProcessManager`]s (one per simulation run) via
/// [`CompiledScenario::build_dpm`].
///
/// # Examples
///
/// ```
/// use adpm_dddl::compile_source;
/// use adpm_core::DpmConfig;
/// let scenario = compile_source(r#"
///     object rx {
///         property P-front : interval(0, 300);
///         property P-ser : interval(0, 300);
///     }
///     constraint power: rx.P-front + rx.P-ser <= 200;
///     problem top { constraints: power; }
///     problem fe under top { outputs: rx.P-front; designer 0; }
///     problem de under top { outputs: rx.P-ser; designer 1; }
/// "#)?;
/// let dpm = scenario.build_dpm(DpmConfig::adpm());
/// assert_eq!(dpm.designers().len(), 2);
/// assert_eq!(dpm.problems().len(), 3);
/// # Ok::<(), adpm_dddl::DddlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    network: ConstraintNetwork,
    ast: ScenarioAst,
    properties: HashMap<(String, String), PropertyId>,
    constraints: HashMap<String, ConstraintId>,
    initial_bindings: Vec<(PropertyId, f64)>,
    designer_count: u32,
}

/// Parses and compiles DDDL source in one step.
///
/// # Errors
///
/// Returns any lexing, parsing, or compilation error.
pub fn compile_source(source: &str) -> Result<CompiledScenario, DddlError> {
    compile(crate::parser::parse(source)?)
}

/// Compiles a parsed scenario.
///
/// # Errors
///
/// Returns [`DddlError::Compile`] on unknown names (property or constraint
/// references), duplicate declarations, or problems declared before their
/// parents; and [`DddlError::Network`] if a constraint is semantically
/// invalid (e.g. a symbolic property used arithmetically).
pub fn compile(ast: ScenarioAst) -> Result<CompiledScenario, DddlError> {
    let mut network = ConstraintNetwork::new();
    let mut properties = HashMap::new();
    let mut initial_bindings = Vec::new();

    for object in &ast.objects {
        for decl in &object.properties {
            let domain = match &decl.domain {
                DomainDecl::Interval(lo, hi) => Domain::interval(*lo, *hi),
                DomainDecl::Set(values) => Domain::number_set(values.iter().copied()),
                DomainDecl::Choice(values) => Domain::text_set(values.iter().cloned()),
                DomainDecl::Bool => Domain::boolean(),
            };
            let mut meta = Property::new(&decl.name, &object.name, domain);
            if let Some(units) = &decl.units {
                meta = meta.with_units(units.clone());
            }
            if !decl.levels.is_empty() {
                meta = meta.with_abstraction_levels(decl.levels.iter().cloned());
            }
            let pid = network.add_property(meta)?;
            properties.insert((object.name.clone(), decl.name.clone()), pid);
            if let Some(init) = decl.init {
                initial_bindings.push((pid, init));
            }
        }
    }

    let lookup = |r: &PropRef| -> Result<PropertyId, DddlError> {
        properties
            .get(&(r.object.clone(), r.property.clone()))
            .copied()
            .ok_or_else(|| DddlError::Compile {
                message: format!("unknown property reference `{r}`"),
            })
    };

    let mut constraints = HashMap::new();
    for decl in &ast.constraints {
        if constraints.contains_key(&decl.name) {
            return Err(DddlError::Compile {
                message: format!("duplicate constraint name `{}`", decl.name),
            });
        }
        let lhs = lower_expr(&decl.lhs, &lookup)?;
        let rhs = lower_expr(&decl.rhs, &lookup)?;
        let rel = match decl.rel {
            RelOp::Le => Relation::Le,
            RelOp::Lt => Relation::Lt,
            RelOp::Ge => Relation::Ge,
            RelOp::Gt => Relation::Gt,
            RelOp::Eq => Relation::Eq,
        };
        let cid = network.add_constraint(&decl.name, lhs, rel, rhs)?;
        if decl.soft {
            network.set_constraint_soft(cid, true)?;
        }
        for mono in &decl.monotonic {
            let pid = lookup(&mono.property)?;
            let dir = if mono.increasing {
                HelpsDirection::Up
            } else {
                HelpsDirection::Down
            };
            network.declare_monotonic(cid, pid, dir)?;
        }
        constraints.insert(decl.name.clone(), cid);
    }

    // Validate problem declarations eagerly so build_dpm cannot fail.
    let mut seen_problems: Vec<&str> = Vec::new();
    let mut designer_count = 0u32;
    for decl in &ast.problems {
        if seen_problems.contains(&decl.name.as_str()) {
            return Err(DddlError::Compile {
                message: format!("duplicate problem name `{}`", decl.name),
            });
        }
        if let Some(parent) = &decl.parent {
            if !seen_problems.contains(&parent.as_str()) {
                return Err(DddlError::Compile {
                    message: format!(
                        "problem `{}` references parent `{parent}` before its declaration",
                        decl.name
                    ),
                });
            }
        }
        for predecessor in &decl.after {
            if !seen_problems.contains(&predecessor.as_str()) {
                return Err(DddlError::Compile {
                    message: format!(
                        "problem `{}` comes after `{predecessor}`, which is not declared before it",
                        decl.name
                    ),
                });
            }
        }
        for r in decl.outputs.iter().chain(decl.inputs.iter()) {
            lookup(r)?;
        }
        for cname in &decl.constraints {
            if !constraints.contains_key(cname) {
                return Err(DddlError::Compile {
                    message: format!(
                        "problem `{}` references unknown constraint `{cname}`",
                        decl.name
                    ),
                });
            }
        }
        if let Some(d) = decl.designer {
            designer_count = designer_count.max(d + 1);
        }
        seen_problems.push(&decl.name);
    }

    Ok(CompiledScenario {
        network,
        ast,
        properties,
        constraints,
        initial_bindings,
        designer_count,
    })
}

fn lower_expr<F>(ast: &ExprAst, lookup: &F) -> Result<adpm_constraint::Expr, DddlError>
where
    F: Fn(&PropRef) -> Result<PropertyId, DddlError>,
{
    Ok(match ast {
        ExprAst::Num(x) => expr::cst(*x),
        ExprAst::Ref(r) => expr::var(lookup(r)?),
        ExprAst::Neg(e) => -lower_expr(e, lookup)?,
        ExprAst::Unary(f, e) => {
            let inner = lower_expr(e, lookup)?;
            match f {
                UnaryFn::Sqrt => inner.sqrt(),
                UnaryFn::Abs => inner.abs(),
                UnaryFn::Exp => inner.exp(),
                UnaryFn::Ln => inner.ln(),
            }
        }
        ExprAst::Binary2(f, a, b) => {
            let (a, b) = (lower_expr(a, lookup)?, lower_expr(b, lookup)?);
            match f {
                Binary2Fn::Min => a.min(b),
                Binary2Fn::Max => a.max(b),
            }
        }
        ExprAst::Bin(op, a, b) => {
            let (a, b) = (lower_expr(a, lookup)?, lower_expr(b, lookup)?);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            }
        }
        ExprAst::Pow(e, n) => lower_expr(e, lookup)?.powi(*n),
    })
}

impl CompiledScenario {
    /// The compiled constraint network (before any initial bindings).
    pub fn network(&self) -> &ConstraintNetwork {
        &self.network
    }

    /// The source AST.
    pub fn ast(&self) -> &ScenarioAst {
        &self.ast
    }

    /// Number of designers the scenario's problem assignments require.
    pub fn designer_count(&self) -> u32 {
        self.designer_count
    }

    /// Looks up a property id by `(object, name)`.
    pub fn property(&self, object: &str, name: &str) -> Option<PropertyId> {
        self.properties
            .get(&(object.to_owned(), name.to_owned()))
            .copied()
    }

    /// Looks up a constraint id by name.
    pub fn constraint(&self, name: &str) -> Option<ConstraintId> {
        self.constraints.get(name).copied()
    }

    /// Initial requirement bindings declared with `init`.
    pub fn initial_bindings(&self) -> &[(PropertyId, f64)] {
        &self.initial_bindings
    }

    /// Builds a fresh design-process manager for one run: the problem
    /// hierarchy is instantiated, problems are assigned to designers, and
    /// `init` requirement values are bound.
    ///
    /// # Panics
    ///
    /// Panics if an `init` value lies outside its property's declared
    /// domain (compilation validates names but binding is checked here).
    pub fn build_dpm(&self, config: DpmConfig) -> DesignProcessManager {
        let mut network = self.network.clone();
        for (pid, value) in &self.initial_bindings {
            network
                .bind(*pid, Value::number(*value))
                .expect("init value lies inside the declared domain");
        }
        let mut dpm = DesignProcessManager::new(network, config);
        for _ in 0..self.designer_count {
            dpm.add_designer();
        }
        let mut ids: HashMap<&str, ProblemId> = HashMap::new();
        for decl in &self.ast.problems {
            let pid = match &decl.parent {
                None => dpm.problems_mut().add_root(&decl.name),
                Some(parent) => {
                    let parent_id = ids[parent.as_str()];
                    dpm.problems_mut().decompose(parent_id, &decl.name)
                }
            };
            ids.insert(&decl.name, pid);
            let outputs: Vec<PropertyId> = decl
                .outputs
                .iter()
                .map(|r| self.properties[&(r.object.clone(), r.property.clone())])
                .collect();
            let inputs: Vec<PropertyId> = decl
                .inputs
                .iter()
                .map(|r| self.properties[&(r.object.clone(), r.property.clone())])
                .collect();
            let constraint_ids: Vec<ConstraintId> = decl
                .constraints
                .iter()
                .map(|name| self.constraints[name.as_str()])
                .collect();
            let predecessors: Vec<ProblemId> = decl
                .after
                .iter()
                .map(|name| ids[name.as_str()])
                .collect();
            let mut problem = dpm
                .problems()
                .problem(pid)
                .clone()
                .with_outputs(outputs)
                .with_inputs(inputs)
                .with_constraints(constraint_ids)
                .with_predecessors(predecessors);
            if let Some(d) = decl.designer {
                problem = problem.with_assignee(DesignerId::new(d));
            }
            let status = dpm.problems().problem(pid).status();
            problem.set_status(status);
            *dpm.problems_mut().problem_mut(pid) = problem;
        }
        dpm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::ConstraintStatus;
    use adpm_core::{Operation, ProblemStatus};

    const RECEIVER_MINI: &str = r#"
        object rx {
            property P-front : interval(0, 300) units "mW";
            property P-ser : interval(0, 300);
            property P-max : interval(0, 300) init 200;
        }
        constraint power: rx.P-front + rx.P-ser <= rx.P-max
            monotonic decreasing in rx.P-front, decreasing in rx.P-ser;
        problem top { constraints: power; outputs: rx.P-max; }
        problem fe under top { outputs: rx.P-front; designer 0; }
        problem de under top { outputs: rx.P-ser; designer 1; }
    "#;

    #[test]
    fn compiles_properties_constraints_and_lookup_tables() {
        let s = compile_source(RECEIVER_MINI).unwrap();
        assert_eq!(s.network().property_count(), 3);
        assert_eq!(s.network().constraint_count(), 1);
        assert!(s.property("rx", "P-front").is_some());
        assert!(s.property("rx", "missing").is_none());
        assert!(s.constraint("power").is_some());
        assert_eq!(s.designer_count(), 2);
        assert_eq!(s.initial_bindings().len(), 1);
    }

    #[test]
    fn soft_modifier_is_transferred_to_the_network() {
        let s = compile_source(
            r#"
            object o { property x : interval(0, 10); }
            soft constraint pref: o.x <= 5;
            constraint hard: o.x >= 0;
            problem top { constraints: pref, hard; outputs: o.x; designer 0; }
            "#,
        )
        .unwrap();
        let pref = s.constraint("pref").unwrap();
        let hard = s.constraint("hard").unwrap();
        assert!(s.network().constraint(pref).is_soft());
        assert!(!s.network().constraint(hard).is_soft());
    }

    #[test]
    fn declared_monotonicity_is_transferred() {
        let s = compile_source(RECEIVER_MINI).unwrap();
        let cid = s.constraint("power").unwrap();
        let pf = s.property("rx", "P-front").unwrap();
        assert_eq!(
            s.network().declared_monotonic(cid, pf),
            Some(HelpsDirection::Down)
        );
    }

    #[test]
    fn build_dpm_assembles_hierarchy_and_initial_bindings() {
        let s = compile_source(RECEIVER_MINI).unwrap();
        let dpm = s.build_dpm(DpmConfig::adpm());
        assert_eq!(dpm.problems().len(), 3);
        assert_eq!(dpm.designers().len(), 2);
        let root = dpm.problems().root().unwrap();
        assert_eq!(dpm.problems().problem(root).status(), ProblemStatus::Waiting);
        let pmax = s.property("rx", "P-max").unwrap();
        assert!(dpm.network().is_bound(pmax));
    }

    #[test]
    fn built_dpm_runs_a_full_mini_design() {
        let s = compile_source(RECEIVER_MINI).unwrap();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        let fe = dpm.problems().ids().nth(1).unwrap();
        let de = dpm.problems().ids().nth(2).unwrap();
        let pf = s.property("rx", "P-front").unwrap();
        let ps = s.property("rx", "P-ser").unwrap();
        let d0 = dpm.designers()[0];
        let d1 = dpm.designers()[1];
        dpm.execute(Operation::assign(d0, fe, pf, Value::number(120.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, de, ps, Value::number(60.0)))
            .unwrap();
        assert!(dpm.design_complete());
        let cid = s.constraint("power").unwrap();
        assert_eq!(dpm.network().status(cid), ConstraintStatus::Satisfied);
    }

    #[test]
    fn two_runs_are_independent() {
        let s = compile_source(RECEIVER_MINI).unwrap();
        let mut dpm1 = s.build_dpm(DpmConfig::adpm());
        let dpm2 = s.build_dpm(DpmConfig::conventional());
        let pf = s.property("rx", "P-front").unwrap();
        let fe = dpm1.problems().ids().nth(1).unwrap();
        let d0 = dpm1.designers()[0];
        dpm1.execute(Operation::assign(d0, fe, pf, Value::number(120.0)))
            .unwrap();
        assert!(dpm1.network().is_bound(pf));
        assert!(!dpm2.network().is_bound(pf));
    }

    #[test]
    fn unknown_property_reference_fails_compilation() {
        let err = compile_source(
            "object o { property x : interval(0, 1); } constraint c: o.y <= 1;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown property reference `o.y`"));
    }

    #[test]
    fn unknown_constraint_reference_fails_compilation() {
        let err = compile_source(
            "object o { property x : interval(0, 1); } problem top { constraints: ghost; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown constraint `ghost`"));
    }

    #[test]
    fn after_clause_builds_predecessors() {
        let s = compile_source(
            r#"
            object o { property x : interval(0, 1); property y : interval(0, 1); }
            problem top { }
            problem a under top { outputs: o.x; designer 0; }
            problem b under top after a { outputs: o.y; designer 1; }
            "#,
        )
        .unwrap();
        let dpm = s.build_dpm(DpmConfig::adpm());
        let b = dpm.problems().ids().nth(2).unwrap();
        let a = dpm.problems().ids().nth(1).unwrap();
        assert_eq!(dpm.problems().problem(b).predecessors(), &[a]);
        assert!(dpm.problems().problem(a).predecessors().is_empty());
    }

    #[test]
    fn after_must_reference_an_earlier_problem() {
        let err = compile_source(
            r#"
            object o { property x : interval(0, 1); }
            problem top { }
            problem b under top after ghost { outputs: o.x; }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not declared before"), "{err}");
    }

    #[test]
    fn parent_must_be_declared_first() {
        let err = compile_source(
            r#"
            object o { property x : interval(0, 1); }
            problem child under top { outputs: o.x; }
            problem top { }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("before its declaration"));
    }

    #[test]
    fn duplicate_names_fail_compilation() {
        let err = compile_source(
            r#"
            object o { property x : interval(0, 1); }
            constraint c: o.x <= 1;
            constraint c: o.x >= 0;
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate constraint"));
        let err = compile_source(
            r#"
            object o { property x : interval(0, 1); }
            problem p { }
            problem p { }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate problem"));
    }

    #[test]
    fn symbolic_property_in_arithmetic_fails() {
        let err = compile_source(
            r#"
            object o { property level : choice(a, b); }
            constraint c: o.level <= 1;
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, DddlError::Network(_)));
    }

    #[test]
    fn all_expression_forms_lower() {
        let s = compile_source(
            r#"
            object o { property x : interval(0.1, 1); property y : interval(0.1, 1); }
            constraint c:
                sqrt(o.x) + abs(o.y) * exp(o.x) - ln(o.y) / (o.x ^ 2)
                + min(o.x, o.y) + max(o.x, -o.y) <= 100;
            "#,
        )
        .unwrap();
        assert_eq!(s.network().constraint_count(), 1);
    }
}
