//! Simulation statistics capture and aggregation.
//!
//! TeamSim "dynamically captures, stores, and consolidates simulation
//! statistics" (paper §3.1): per executed operation, the number of
//! constraint violations found, the constraint evaluations run because of
//! it, cumulative counts, and spins. [`RunStats`] is one run's capture;
//! [`Summary`] and [`Batch`] aggregate across seeds the way Fig. 9 does.

use adpm_core::OperationRecord;
use std::collections::BTreeMap;

/// One operation's captured row (what TeamSim displays per operation).
#[derive(Debug, Clone, PartialEq)]
pub struct OperationStat {
    /// 1-based operation number.
    pub index: usize,
    /// Index of the requesting designer.
    pub designer: u32,
    /// Short operator kind (`assign`, `verify`, ...).
    pub kind: &'static str,
    /// Violations newly found upon this operation (Fig. 7(a) series).
    pub violations_found: usize,
    /// Violations known immediately after the operation.
    pub violations_after: usize,
    /// Constraint evaluations executed due to the operation (Fig. 7(b)).
    pub evaluations: usize,
    /// Whether the operation was a design spin.
    pub spin: bool,
}

impl OperationStat {
    /// Captures the row for one executed operation.
    pub fn from_record(record: &OperationRecord) -> Self {
        OperationStat {
            index: record.sequence,
            designer: record.operation.designer().index() as u32,
            kind: record.operation.operator().kind(),
            violations_found: record.new_violations.len(),
            violations_after: record.violations_after,
            evaluations: record.evaluations,
            spin: record.spin,
        }
    }
}

/// Statistics of one complete simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Whether the design reached completion within the operation cap.
    pub completed: bool,
    /// Number of executed design operations `N_O`.
    pub operations: usize,
    /// Total constraint evaluations `N_T`, including scenario setup.
    pub evaluations: usize,
    /// Evaluations spent before the first operation (initial propagation).
    pub setup_evaluations: usize,
    /// Total design spins.
    pub spins: usize,
    /// Per-operation capture, in execution order.
    pub per_operation: Vec<OperationStat>,
}

impl RunStats {
    /// Average evaluations per executed operation `N_E = N_T / N_O`.
    pub fn evaluations_per_operation(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.evaluations as f64 / self.operations as f64
        }
    }

    /// The Fig. 7(a) series: violations found upon each operation.
    pub fn violations_profile(&self) -> Vec<usize> {
        self.per_operation
            .iter()
            .map(|s| s.violations_found)
            .collect()
    }

    /// The Fig. 7(b) series: evaluations per operation.
    pub fn evaluations_profile(&self) -> Vec<usize> {
        self.per_operation.iter().map(|s| s.evaluations).collect()
    }

    /// Index of the first and last operation that found violations, if any
    /// (the paper observes ADPM violations "start later and stop earlier").
    pub fn violation_span(&self) -> Option<(usize, usize)> {
        let firsts: Vec<usize> = self
            .per_operation
            .iter()
            .filter(|s| s.violations_found > 0)
            .map(|s| s.index)
            .collect();
        match (firsts.first(), firsts.last()) {
            (Some(a), Some(b)) => Some((*a, *b)),
            _ => None,
        }
    }

    /// Total violations found over the run.
    pub fn total_violations_found(&self) -> usize {
        self.per_operation.iter().map(|s| s.violations_found).sum()
    }

    /// Operations requested per designer — the "designer effort" the paper
    /// argues ADPM reduces ("each operation requires a direct request from
    /// a designer").
    pub fn operations_by_designer(&self) -> BTreeMap<u32, usize> {
        let mut out = BTreeMap::new();
        for stat in &self.per_operation {
            *out.entry(stat.designer).or_insert(0) += 1;
        }
        out
    }
}

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample. Empty samples yield all-zero summaries.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std_dev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

/// Percentile of a sample using linear interpolation between order
/// statistics (`q` in `[0, 1]`). Empty samples yield 0.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let t = position - lower as f64;
        sorted[lower] * (1.0 - t) + sorted[upper] * t
    }
}

/// A batch of runs of one configuration (one bar of Fig. 9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    runs: Vec<RunStats>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a run.
    pub fn push(&mut self, run: RunStats) {
        self.runs.push(run);
    }

    /// The collected runs.
    pub fn runs(&self) -> &[RunStats] {
        &self.runs
    }

    /// Fraction of runs that completed within the operation cap.
    pub fn completion_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.completed).count() as f64 / self.runs.len() as f64
    }

    /// Summary of operations-to-complete (completed runs only).
    pub fn operations(&self) -> Summary {
        Summary::of(
            &self
                .runs
                .iter()
                .filter(|r| r.completed)
                .map(|r| r.operations as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of total evaluations (completed runs only).
    pub fn evaluations(&self) -> Summary {
        Summary::of(
            &self
                .runs
                .iter()
                .filter(|r| r.completed)
                .map(|r| r.evaluations as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of evaluations per operation (completed runs only).
    pub fn evaluations_per_operation(&self) -> Summary {
        Summary::of(
            &self
                .runs
                .iter()
                .filter(|r| r.completed)
                .map(|r| r.evaluations_per_operation())
                .collect::<Vec<_>>(),
        )
    }

    /// Percentile of operations-to-complete over the completed runs
    /// (`0.5` = median, `0.9` = p90) — tail behaviour is what the paper's
    /// "predictability" claim is about.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn operations_percentile(&self, q: f64) -> f64 {
        percentile(
            &self
                .runs
                .iter()
                .filter(|r| r.completed)
                .map(|r| r.operations as f64)
                .collect::<Vec<_>>(),
            q,
        )
    }

    /// Mean spins per completed run.
    pub fn mean_spins(&self) -> f64 {
        let done: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| r.completed)
            .map(|r| r.spins as f64)
            .collect();
        Summary::of(&done).mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(index: usize, found: usize, evals: usize, spin: bool) -> OperationStat {
        OperationStat {
            index,
            designer: (index % 2) as u32,
            kind: "assign",
            violations_found: found,
            violations_after: found,
            evaluations: evals,
            spin,
        }
    }

    fn run(ops: Vec<OperationStat>, completed: bool) -> RunStats {
        let evaluations = ops.iter().map(|s| s.evaluations).sum::<usize>() + 3;
        let spins = ops.iter().filter(|s| s.spin).count();
        RunStats {
            completed,
            operations: ops.len(),
            evaluations,
            setup_evaluations: 3,
            spins,
            per_operation: ops,
        }
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_handles_degenerate_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[3.0]);
        assert_eq!(single.mean, 3.0);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn run_stats_profiles_and_span() {
        let r = run(
            vec![
                stat(1, 0, 2, false),
                stat(2, 1, 5, false),
                stat(3, 2, 4, true),
                stat(4, 0, 1, false),
            ],
            true,
        );
        assert_eq!(r.violations_profile(), vec![0, 1, 2, 0]);
        assert_eq!(r.evaluations_profile(), vec![2, 5, 4, 1]);
        assert_eq!(r.violation_span(), Some((2, 3)));
        assert_eq!(r.total_violations_found(), 3);
        assert_eq!(r.spins, 1);
        assert!((r.evaluations_per_operation() - 15.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn operations_by_designer_partitions_the_run() {
        let r = run(
            vec![
                stat(1, 0, 1, false),
                stat(2, 0, 1, false),
                stat(3, 0, 1, false),
                stat(4, 0, 1, false),
            ],
            true,
        );
        let by_designer = r.operations_by_designer();
        assert_eq!(by_designer.values().sum::<usize>(), r.operations);
        assert_eq!(by_designer[&0], 2); // indices 2, 4
        assert_eq!(by_designer[&1], 2); // indices 1, 3
    }

    #[test]
    fn violation_span_none_when_clean() {
        let r = run(vec![stat(1, 0, 1, false)], true);
        assert_eq!(r.violation_span(), None);
    }

    #[test]
    fn batch_aggregates_completed_runs_only() {
        let mut batch = Batch::new();
        batch.push(run(vec![stat(1, 0, 2, false), stat(2, 1, 2, true)], true));
        batch.push(run(vec![stat(1, 0, 2, false)], true));
        batch.push(run(vec![stat(1, 3, 2, false)], false)); // censored
        assert_eq!(batch.runs().len(), 3);
        assert!((batch.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(batch.operations().n, 2);
        assert!((batch.operations().mean - 1.5).abs() < 1e-12);
        assert!((batch.mean_spins() - 0.5).abs() < 1e-12);
        assert!(batch.evaluations().mean > 0.0);
        assert!(batch.evaluations_per_operation().mean > 0.0);
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 1.0), 4.0);
        assert_eq!(percentile(&values, 0.5), 2.5);
        assert!((percentile(&values, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_bad_quantiles() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn batch_operations_percentile_uses_completed_runs() {
        let mut batch = Batch::new();
        batch.push(run(vec![stat(1, 0, 1, false)], true));
        batch.push(run(vec![stat(1, 0, 1, false), stat(2, 0, 1, false), stat(3, 0, 1, false)], true));
        batch.push(run(vec![stat(1, 0, 1, false); 9], false)); // censored, ignored
        assert_eq!(batch.operations_percentile(0.5), 2.0);
        assert_eq!(batch.operations_percentile(1.0), 3.0);
    }

    #[test]
    fn zero_operation_run_has_zero_rate() {
        let r = RunStats {
            completed: false,
            operations: 0,
            evaluations: 5,
            setup_evaluations: 5,
            spins: 0,
            per_operation: Vec::new(),
        };
        assert_eq!(r.evaluations_per_operation(), 0.0);
    }
}
