//! Simulation configuration.

use adpm_constraint::{PropagationConfig, PropagationKind};
use adpm_core::{DpmConfig, ManagementMode};

/// How a designer orders unbound outputs when choosing what to work on
/// next (the `f_a` forward branch).
///
/// The paper's designer model uses the smallest-feasible-subspace rule of
/// §2.3.1; §2.3.2 describes the alternative of preferring strongly
/// connected properties (`β`), including the extension counting indirectly
/// related constraints. All three are selectable here so the bench harness
/// can compare them — the "other heuristics" the paper's conclusions call
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardOrdering {
    /// §2.3.1: smallest feasible subspace first (the paper's `f_a`).
    #[default]
    SmallestFeasible,
    /// §2.3.2: most connected constraints (`β`) first.
    Beta,
    /// §2.3.2 extension: most two-hop-connected constraints first.
    BetaIndirect,
}

/// Which of ADPM's heuristic supports the simulated designers use.
///
/// All four are on by default (the paper's ADPM configuration); the
/// ablation benches switch them off one at a time to quantify each
/// heuristic's contribution (the §2.3 design choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicToggles {
    /// §2.3.1 — order forward work by the selected ordering (off = random).
    pub feasible_ordering: bool,
    /// Which ordering `feasible_ordering` applies.
    pub forward_ordering: ForwardOrdering,
    /// §2.3.1 — pick values from the feasible subspace (vs the raw `E_i`).
    pub feasible_values: bool,
    /// §2.3.3 — pick repair targets by connected-violation count `α`.
    pub alpha_repair: bool,
    /// §3.1.1 — move repaired values in the direction fixing most
    /// violations (monotonicity-aware repair).
    pub direction_repair: bool,
}

impl Default for HeuristicToggles {
    fn default() -> Self {
        HeuristicToggles {
            feasible_ordering: true,
            forward_ordering: ForwardOrdering::SmallestFeasible,
            feasible_values: true,
            alpha_repair: true,
            direction_repair: true,
        }
    }
}

impl HeuristicToggles {
    /// All heuristics enabled (the paper's ADPM configuration).
    pub fn all() -> Self {
        Self::default()
    }

    /// All heuristics disabled.
    pub fn none() -> Self {
        HeuristicToggles {
            feasible_ordering: false,
            forward_ordering: ForwardOrdering::SmallestFeasible,
            feasible_values: false,
            alpha_repair: false,
            direction_repair: false,
        }
    }
}

/// Configuration for one TeamSim run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// The paper's `λ` flag: ADPM or conventional transition model.
    pub mode: ManagementMode,
    /// Random seed; the paper's evaluation varies this across 60+ runs.
    pub seed: u64,
    /// Hard cap on executed design operations; runs that exceed it are
    /// reported as incomplete (censored) rather than looping forever.
    pub max_operations: usize,
    /// Repair step size as a fraction of `|E_i|` — the paper reports that
    /// "delta values around 100 times smaller than the size of E_i worked
    /// well", i.e. `0.01`.
    pub delta_fraction: f64,
    /// Which heuristic supports ADPM designers use (ablation knob).
    pub heuristics: HeuristicToggles,
    /// Probability that a designer ignores the monotonicity vote when
    /// choosing a fresh value, modelling secondary objectives the
    /// constraint network does not capture (like the paper's §2.4 designer
    /// choosing the smallest feasible width to save power). This is what
    /// makes runs vary across seeds in both modes.
    pub choice_noise: f64,
    /// Propagation settings for the ADPM DCM, including which revision
    /// engine runs the hot path (`propagation.engine`): the AST
    /// interpreter, the compiled flat-program engine, or the compiled
    /// engine parallelized across connected components.
    pub propagation: PropagationConfig,
    /// Which DCM propagation path the ADPM DPM runs after each operation:
    /// from-scratch full propagation (the default) or dirty-set incremental
    /// propagation seeded with the operation's target property.
    pub propagation_kind: PropagationKind,
}

impl SimulationConfig {
    /// ADPM-mode configuration with the given seed.
    pub fn adpm(seed: u64) -> Self {
        SimulationConfig {
            mode: ManagementMode::Adpm,
            seed,
            max_operations: 5_000,
            delta_fraction: 0.01,
            heuristics: HeuristicToggles::all(),
            choice_noise: 0.25,
            propagation: PropagationConfig::default(),
            propagation_kind: PropagationKind::Full,
        }
    }

    /// Conventional-mode configuration with the given seed.
    pub fn conventional(seed: u64) -> Self {
        SimulationConfig {
            mode: ManagementMode::Conventional,
            ..Self::adpm(seed)
        }
    }

    /// Configuration for the given mode (convenience for sweeps).
    pub fn for_mode(mode: ManagementMode, seed: u64) -> Self {
        match mode {
            ManagementMode::Adpm => Self::adpm(seed),
            ManagementMode::Conventional => Self::conventional(seed),
        }
    }

    /// The DPM configuration this simulation config implies.
    pub fn dpm_config(&self) -> DpmConfig {
        DpmConfig {
            mode: self.mode,
            propagation: self.propagation.clone(),
            propagation_kind: self.propagation_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_mode() {
        assert_eq!(SimulationConfig::adpm(1).mode, ManagementMode::Adpm);
        assert_eq!(
            SimulationConfig::conventional(1).mode,
            ManagementMode::Conventional
        );
        assert_eq!(
            SimulationConfig::for_mode(ManagementMode::Adpm, 2).mode,
            ManagementMode::Adpm
        );
    }

    #[test]
    fn defaults_match_paper_parameters() {
        let c = SimulationConfig::adpm(0);
        assert_eq!(c.delta_fraction, 0.01); // |E_i| / 100
        assert!(c.heuristics.feasible_ordering);
        assert!(c.heuristics.alpha_repair);
    }

    #[test]
    fn toggle_constructors() {
        assert!(HeuristicToggles::all().direction_repair);
        assert!(!HeuristicToggles::none().feasible_values);
        assert_eq!(
            HeuristicToggles::all().forward_ordering,
            ForwardOrdering::SmallestFeasible
        );
    }

    #[test]
    fn dpm_config_propagates_mode() {
        let c = SimulationConfig::conventional(7);
        assert_eq!(c.dpm_config().mode, ManagementMode::Conventional);
    }

    #[test]
    fn dpm_config_propagates_propagation_kind() {
        let mut c = SimulationConfig::adpm(7);
        assert_eq!(c.dpm_config().propagation_kind, PropagationKind::Full);
        c.propagation_kind = PropagationKind::Incremental;
        assert_eq!(c.dpm_config().propagation_kind, PropagationKind::Incremental);
    }

    #[test]
    fn dpm_config_propagates_engine() {
        use adpm_constraint::PropagationEngine;

        let mut c = SimulationConfig::adpm(7);
        assert_eq!(c.dpm_config().propagation.engine, PropagationEngine::Interp);
        c.propagation.engine = PropagationEngine::Compiled;
        assert_eq!(
            c.dpm_config().propagation.engine,
            PropagationEngine::Compiled
        );
    }
}
