//! Visualization of simulation statistics.
//!
//! The paper's TeamSim rendered its statistics with Gnuplot/Lefty windows
//! (Fig. 8); here the same data becomes ASCII charts and CSV text so the
//! bench harness can print Fig. 7/8/9/10-shaped output directly.

use crate::engine::Simulation;
use crate::stats::{Batch, RunStats};
use std::fmt::Write as _;

/// Renders the Fig. 7-style profile: two series (conventional solid `#`,
/// ADPM dotted `*`) of a per-operation metric as a horizontal-bar list.
pub fn profile_chart(
    title: &str,
    conventional: &[usize],
    adpm: &[usize],
    max_rows: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "  op | conventional (#)              | ADPM (*)");
    let peak = conventional
        .iter()
        .chain(adpm.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let rows = conventional.len().max(adpm.len()).min(max_rows);
    let scale = 28.0 / peak as f64;
    for i in 0..rows {
        let c = conventional.get(i).copied().unwrap_or(0);
        let a = adpm.get(i).copied().unwrap_or(0);
        let cbar = "#".repeat((c as f64 * scale).round() as usize);
        let abar = "*".repeat((a as f64 * scale).round() as usize);
        let _ = writeln!(out, "{:>4} | {cbar:<30}| {abar}", i + 1);
    }
    if conventional.len().max(adpm.len()) > rows {
        let _ = writeln!(
            out,
            "  ... ({} more operations)",
            conventional.len().max(adpm.len()) - rows
        );
    }
    out
}

/// Renders the Fig. 8-style design-process statistics window for a running
/// (or finished) simulation: number of constraints, violations,
/// evaluations, and cumulative spins.
pub fn stats_window(sim: &Simulation) -> String {
    let dpm = sim.dpm();
    let mut out = String::new();
    let _ = writeln!(out, "── Design process statistics ───────────────────");
    let _ = writeln!(out, "mode:                   {:?}", dpm.mode());
    let _ = writeln!(
        out,
        "constraints:            {}",
        dpm.network().constraint_count()
    );
    let _ = writeln!(
        out,
        "properties:             {}",
        dpm.network().property_count()
    );
    let _ = writeln!(out, "executed operations:    {}", sim.operations());
    let _ = writeln!(
        out,
        "current violations:     {}",
        dpm.known_violations().len()
    );
    let _ = writeln!(
        out,
        "constraint evaluations: {}",
        dpm.total_evaluations()
    );
    let _ = writeln!(out, "cumulative spins:       {}", dpm.spins());
    let _ = writeln!(
        out,
        "design complete:        {}",
        dpm.design_complete()
    );
    let _ = writeln!(out, "────────────────────────────────────────────────");
    out
}

/// Renders a Fig. 9-style two-mode comparison row block.
pub fn comparison_block(label: &str, conventional: &Batch, adpm: &Batch) -> String {
    let mut out = String::new();
    let c_ops = conventional.operations();
    let a_ops = adpm.operations();
    let c_ev = conventional.evaluations();
    let a_ev = adpm.evaluations();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(
        out,
        "  operations   conv {:>8.1} ± {:>7.1}   adpm {:>8.1} ± {:>6.1}   ratio {:.2}x",
        c_ops.mean,
        c_ops.std_dev,
        a_ops.mean,
        a_ops.std_dev,
        safe_ratio(c_ops.mean, a_ops.mean)
    );
    let _ = writeln!(
        out,
        "  evaluations  conv {:>8.1} ± {:>7.1}   adpm {:>8.1} ± {:>6.1}   ratio {:.2}x",
        c_ev.mean,
        c_ev.std_dev,
        a_ev.mean,
        a_ev.std_dev,
        safe_ratio(a_ev.mean, c_ev.mean)
    );
    let _ = writeln!(
        out,
        "  evals/op     conv {:>8.1}             adpm {:>8.1}             ratio {:.2}x",
        conventional.evaluations_per_operation().mean,
        adpm.evaluations_per_operation().mean,
        safe_ratio(
            adpm.evaluations_per_operation().mean,
            conventional.evaluations_per_operation().mean
        )
    );
    let _ = writeln!(
        out,
        "  spins        conv {:>8.1}             adpm {:>8.1}             adpm/conv {:.1}%",
        conventional.mean_spins(),
        adpm.mean_spins(),
        100.0 * safe_ratio(adpm.mean_spins(), conventional.mean_spins())
    );
    let _ = writeln!(
        out,
        "  completion   conv {:>7.0}%             adpm {:>7.0}%",
        100.0 * conventional.completion_rate(),
        100.0 * adpm.completion_rate()
    );
    out
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        if a.abs() < 1e-12 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

/// CSV rows for one run's per-operation capture
/// (`op,kind,violations_found,violations_after,evaluations,spin`).
pub fn run_csv(run: &RunStats) -> String {
    let mut out =
        String::from("op,kind,violations_found,violations_after,evaluations,spin\n");
    for s in &run.per_operation {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            s.index, s.kind, s.violations_found, s.violations_after, s.evaluations, s.spin
        );
    }
    out
}

/// CSV rows for a batch (`seed,completed,operations,evaluations,spins`),
/// one row per run in insertion order (seed inferred from position).
pub fn batch_csv(batch: &Batch) -> String {
    let mut out = String::from("run,completed,operations,evaluations,spins\n");
    for (i, r) in batch.runs().iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            i, r.completed, r.operations, r.evaluations, r.spins
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use crate::engine::run_once;
    use adpm_scenarios::lna_walkthrough;

    fn small_run() -> RunStats {
        run_once(&lna_walkthrough(), SimulationConfig::adpm(1))
    }

    #[test]
    fn profile_chart_scales_and_truncates() {
        let chart = profile_chart("violations", &[3, 0, 1, 0, 0], &[1, 0], 3);
        assert!(chart.contains("violations"));
        assert!(chart.contains("###"));
        assert!(chart.contains("more operations"));
        assert_eq!(chart.lines().count(), 6);
    }

    #[test]
    fn profile_chart_handles_empty_series() {
        let chart = profile_chart("empty", &[], &[], 5);
        assert!(chart.contains("empty"));
    }

    #[test]
    fn stats_window_mentions_key_metrics() {
        let scenario = lna_walkthrough();
        let mut sim = crate::engine::Simulation::new(&scenario, SimulationConfig::adpm(2));
        let _ = sim.run();
        let window = stats_window(&sim);
        for needle in [
            "constraints:",
            "executed operations:",
            "constraint evaluations:",
            "cumulative spins:",
            "design complete:        true",
        ] {
            assert!(window.contains(needle), "missing `{needle}` in\n{window}");
        }
    }

    #[test]
    fn comparison_block_reports_ratios() {
        let mut a = Batch::new();
        let mut c = Batch::new();
        a.push(small_run());
        c.push(small_run());
        let block = comparison_block("walkthrough", &c, &a);
        assert!(block.contains("operations"));
        assert!(block.contains("ratio 1.00x"));
        assert!(block.contains("completion"));
    }

    #[test]
    fn csv_outputs_have_headers_and_rows() {
        let run = small_run();
        let csv = run_csv(&run);
        assert!(csv.starts_with("op,kind,"));
        assert_eq!(csv.lines().count(), run.operations + 1);
        let mut batch = Batch::new();
        batch.push(run);
        let csv = batch_csv(&batch);
        assert!(csv.starts_with("run,completed,"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn safe_ratio_edge_cases() {
        assert_eq!(safe_ratio(0.0, 0.0), 1.0);
        assert!(safe_ratio(1.0, 0.0).is_infinite());
        assert_eq!(safe_ratio(6.0, 3.0), 2.0);
    }
}
