//! Designer negotiation policies — how a simulated designer answers the
//! relaxation proposals a conflict negotiation puts to it.
//!
//! The paper's collaborative-design setting has designers with different
//! viewpoints arguing about which requirement yields when a conflict spans
//! subsystems. TeamSim models three archetypes: the *compromising*
//! designer accepts any proposal, the *stubborn* designer refuses anything
//! that touches its own viewpoint, and the *argumentative* designer
//! counters the first offer before settling. Policies are pure functions
//! of (round, does-it-touch-me), so negotiation outcomes stay a
//! deterministic function of the design state.

use adpm_core::NegotiationAnswer;
use std::fmt;
use std::str::FromStr;

/// How a designer answers relaxation proposals during conflict
/// negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegotiationPolicy {
    /// Accepts every proposal — collaboration over turf.
    #[default]
    Compromising,
    /// Rejects any proposal that touches its own viewpoint (the
    /// properties of its assigned problems); accepts the rest.
    Stubborn,
    /// Counters the first round's proposal with the next-ranked
    /// alternative, then accepts — it wants its say, not a deadlock.
    Argumentative,
}

impl NegotiationPolicy {
    /// Every policy, in the order [`default_team`](Self::default_team)
    /// cycles through.
    pub const ALL: [NegotiationPolicy; 3] = [
        NegotiationPolicy::Compromising,
        NegotiationPolicy::Argumentative,
        NegotiationPolicy::Stubborn,
    ];

    /// Short stable name (`compromising`/`stubborn`/`argumentative`).
    pub fn name(self) -> &'static str {
        match self {
            NegotiationPolicy::Compromising => "compromising",
            NegotiationPolicy::Stubborn => "stubborn",
            NegotiationPolicy::Argumentative => "argumentative",
        }
    }

    /// The policy's verdict on a proposal. `round` is 1-based;
    /// `touches_own_viewpoint` is whether the proposal rewrites a
    /// constraint over (or unbinds) one of the designer's own properties.
    pub fn answer(self, round: u32, touches_own_viewpoint: bool) -> NegotiationAnswer {
        match self {
            NegotiationPolicy::Compromising => NegotiationAnswer::Accept,
            NegotiationPolicy::Stubborn => {
                if touches_own_viewpoint {
                    NegotiationAnswer::Reject
                } else {
                    NegotiationAnswer::Accept
                }
            }
            NegotiationPolicy::Argumentative => {
                if round <= 1 {
                    NegotiationAnswer::Counter
                } else {
                    NegotiationAnswer::Accept
                }
            }
        }
    }

    /// A deterministic policy assignment for a team of `n` designers:
    /// cycles compromising → argumentative → stubborn, so a 3-designer
    /// scenario exercises all three archetypes.
    pub fn default_team(n: usize) -> Vec<NegotiationPolicy> {
        (0..n).map(|i| Self::ALL[i % Self::ALL.len()]).collect()
    }
}

impl fmt::Display for NegotiationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for NegotiationPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compromising" => Ok(NegotiationPolicy::Compromising),
            "stubborn" => Ok(NegotiationPolicy::Stubborn),
            "argumentative" => Ok(NegotiationPolicy::Argumentative),
            other => Err(format!(
                "unknown negotiation policy `{other}` \
                 (expected compromising, stubborn, or argumentative)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compromising_accepts_everything() {
        for round in 1..4 {
            for touches in [false, true] {
                assert_eq!(
                    NegotiationPolicy::Compromising.answer(round, touches),
                    NegotiationAnswer::Accept
                );
            }
        }
    }

    #[test]
    fn stubborn_defends_its_own_viewpoint_only() {
        assert_eq!(
            NegotiationPolicy::Stubborn.answer(1, true),
            NegotiationAnswer::Reject
        );
        assert_eq!(
            NegotiationPolicy::Stubborn.answer(1, false),
            NegotiationAnswer::Accept
        );
    }

    #[test]
    fn argumentative_counters_then_settles() {
        assert_eq!(
            NegotiationPolicy::Argumentative.answer(1, false),
            NegotiationAnswer::Counter
        );
        assert_eq!(
            NegotiationPolicy::Argumentative.answer(2, true),
            NegotiationAnswer::Accept
        );
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for policy in NegotiationPolicy::ALL {
            assert_eq!(policy.name().parse::<NegotiationPolicy>(), Ok(policy));
        }
        assert!("pushover".parse::<NegotiationPolicy>().is_err());
    }

    #[test]
    fn default_team_cycles_all_archetypes() {
        let team = NegotiationPolicy::default_team(3);
        assert_eq!(
            team,
            vec![
                NegotiationPolicy::Compromising,
                NegotiationPolicy::Argumentative,
                NegotiationPolicy::Stubborn,
            ]
        );
        assert_eq!(NegotiationPolicy::default_team(4)[3], NegotiationPolicy::Compromising);
    }
}
