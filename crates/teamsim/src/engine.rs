//! The TeamSim simulation engine.
//!
//! One [`Simulation`] owns a fresh design-process manager built from a
//! compiled scenario, one [`SimulatedDesigner`] per team member, and a
//! seeded RNG. Designers take turns proposing operations (ties and order
//! randomized, as "designers start requesting operations independently");
//! the run ends when the termination condition of the paper's §3.1.2 holds
//! — top-level problem solved, all outputs valued, no violations — or when
//! the operation cap censors the run.

use crate::config::SimulationConfig;
use crate::designer::SimulatedDesigner;
use crate::stats::{OperationStat, RunStats};
use adpm_core::DesignProcessManager;
use adpm_dddl::CompiledScenario;
use adpm_observe::{Clock, Counter, MetricsSink, MonotonicClock, NoopSink, SpanKind, TraceEvent};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

/// Outcome of one engine step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// A designer executed an operation.
    Executed(OperationStat),
    /// No designer had anything to do, but the design is incomplete —
    /// the run is stuck (this is reported as an incomplete run).
    Stalled,
    /// The termination condition holds.
    Complete,
}

/// A running TeamSim simulation.
#[derive(Debug)]
pub struct Simulation {
    dpm: DesignProcessManager,
    designers: Vec<SimulatedDesigner>,
    rng: StdRng,
    config: SimulationConfig,
    stats: Vec<OperationStat>,
    setup_evaluations: usize,
    cursor: usize,
    sink: Arc<dyn MetricsSink>,
    clock: Arc<dyn Clock>,
    ticks: u64,
}

impl Simulation {
    /// Builds a simulation over a fresh DPM for the scenario.
    pub fn new(scenario: &CompiledScenario, config: SimulationConfig) -> Self {
        Self::with_sink(scenario, config, Arc::new(NoopSink))
    }

    /// [`new`](Self::new), routing all instrumentation — per-tick spans
    /// here, per-operation and per-propagation spans in the layers below —
    /// to `sink`. The sink is installed before the DPM's setup propagation
    /// so a trace covers the whole run, opening with a `run_start` line.
    /// Spans are timed against the wall clock; see
    /// [`with_instrumentation`](Self::with_instrumentation) to inject one.
    pub fn with_sink(
        scenario: &CompiledScenario,
        config: SimulationConfig,
        sink: Arc<dyn MetricsSink>,
    ) -> Self {
        Self::with_instrumentation(scenario, config, sink, Arc::new(MonotonicClock))
    }

    /// [`with_sink`](Self::with_sink) with an explicit [`Clock`] for span
    /// durations. The default wall clock reports real `dur_us`; injecting a
    /// [`ManualClock`](adpm_observe::ManualClock) makes every duration a
    /// deterministic function of the execution path, so traces of the same
    /// seed are byte-identical (golden traces). The clock is threaded down
    /// through the DPM into constraint propagation and only read when the
    /// sink is enabled.
    pub fn with_instrumentation(
        scenario: &CompiledScenario,
        config: SimulationConfig,
        sink: Arc<dyn MetricsSink>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let mut dpm = scenario.build_dpm(config.dpm_config());
        dpm.set_sink(sink.clone());
        dpm.set_clock(clock.clone());
        if sink.is_enabled() {
            sink.record(&TraceEvent::RunStart {
                mode: config.mode.as_str(),
                seed: config.seed,
                designers: dpm.designers().len() as u32,
                properties: dpm.network().property_count() as u32,
                constraints: dpm.network().constraint_count() as u32,
            });
        }
        let setup_evaluations = dpm.initialize();
        let designers = dpm
            .designers()
            .iter()
            .map(|d| SimulatedDesigner::new(*d))
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        Simulation {
            dpm,
            designers,
            rng,
            config,
            stats: Vec::new(),
            setup_evaluations,
            cursor: 0,
            sink,
            clock,
            ticks: 0,
        }
    }

    /// The underlying design-process manager (for inspection/reporting).
    pub fn dpm(&self) -> &DesignProcessManager {
        &self.dpm
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Operations executed so far.
    pub fn operations(&self) -> usize {
        self.stats.len()
    }

    /// Per-operation statistics captured so far.
    pub fn stats(&self) -> &[OperationStat] {
        &self.stats
    }

    /// Advances the simulation by (at most) one executed operation.
    ///
    /// Designers are polled round-robin starting from a rotating cursor;
    /// the first proposal is executed. `Stalled` means a full round of
    /// polling produced no proposal while the design is incomplete.
    pub fn step(&mut self) -> StepOutcome {
        let trace = self.sink.is_enabled();
        let started = if trace { self.clock.now_us() } else { 0 };
        let outcome = self.step_inner();
        let tick = self.ticks;
        self.ticks += 1;
        match outcome {
            StepOutcome::Executed(_) => self.sink.incr(Counter::TicksExecuted, 1),
            StepOutcome::Stalled => self.sink.incr(Counter::TicksStalled, 1),
            StepOutcome::Complete => {}
        }
        if trace {
            let (designer, label) = match &outcome {
                StepOutcome::Executed(stat) => (stat.designer, "executed"),
                StepOutcome::Stalled => (u32::MAX, "stalled"),
                StepOutcome::Complete => (u32::MAX, "complete"),
            };
            let dur_us = self.clock.now_us().saturating_sub(started);
            self.sink.record(&TraceEvent::Tick {
                tick,
                designer,
                outcome: label,
                dur_us,
            });
            self.sink.time(SpanKind::Tick, dur_us);
        }
        outcome
    }

    fn step_inner(&mut self) -> StepOutcome {
        if self.dpm.design_complete() {
            return StepOutcome::Complete;
        }
        let n = self.designers.len();
        if n == 0 {
            return StepOutcome::Stalled;
        }
        // Rotate the starting designer; occasionally jump randomly so that
        // interleavings vary across seeds like independent designers would.
        if self.rng.gen_bool(0.3) {
            self.cursor = self.rng.gen_range(0..n);
        }
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            let proposal = {
                let designer = &mut self.designers[idx];
                designer.choose(&self.dpm, &self.config, &mut self.rng)
            };
            if let Some(operation) = proposal {
                self.cursor = (idx + 1) % n;
                match self.dpm.execute(operation) {
                    Ok(record) => {
                        self.designers[idx].observe(&record);
                        let stat = OperationStat::from_record(&record);
                        self.stats.push(stat.clone());
                        return StepOutcome::Executed(stat);
                    }
                    Err(_) => {
                        // An invalid proposal (e.g. value outside E_i due to
                        // numeric noise) is skipped; the designer will
                        // propose again next round.
                        continue;
                    }
                }
            }
        }
        if self.dpm.design_complete() {
            StepOutcome::Complete
        } else {
            StepOutcome::Stalled
        }
    }

    /// Runs to termination (or the operation cap) and returns the captured
    /// statistics.
    pub fn run(&mut self) -> RunStats {
        let mut stalled = false;
        while self.stats.len() < self.config.max_operations {
            match self.step() {
                StepOutcome::Executed(_) => {}
                StepOutcome::Complete => break,
                StepOutcome::Stalled => {
                    stalled = true;
                    break;
                }
            }
        }
        let completed = self.dpm.design_complete() && !stalled;
        let stats = RunStats {
            completed,
            operations: self.stats.len(),
            evaluations: self.dpm.total_evaluations(),
            setup_evaluations: self.setup_evaluations,
            spins: self.dpm.spins(),
            per_operation: self.stats.clone(),
        };
        if self.sink.is_enabled() {
            self.sink.record(&TraceEvent::RunSummary {
                operations: stats.operations as u64,
                evaluations: stats.evaluations as u64,
                spins: stats.spins as u64,
                violations: stats.total_violations_found() as u64,
                completed: stats.completed,
            });
        }
        stats
    }
}

/// Convenience: build and run one simulation.
pub fn run_once(scenario: &CompiledScenario, config: SimulationConfig) -> RunStats {
    Simulation::new(scenario, config).run()
}

/// Convenience: build and run one instrumented simulation. Everything the
/// run does — setup propagation, every tick, operation, and propagation
/// wave — reports to `sink`; see [`Simulation::with_sink`].
pub fn run_once_with_sink(
    scenario: &CompiledScenario,
    config: SimulationConfig,
    sink: Arc<dyn MetricsSink>,
) -> RunStats {
    Simulation::with_sink(scenario, config, sink).run()
}

/// Convenience: build and run one instrumented simulation against an
/// explicit clock (deterministic `dur_us` under a
/// [`ManualClock`](adpm_observe::ManualClock)); see
/// [`Simulation::with_instrumentation`].
pub fn run_once_instrumented(
    scenario: &CompiledScenario,
    config: SimulationConfig,
    sink: Arc<dyn MetricsSink>,
    clock: Arc<dyn Clock>,
) -> RunStats {
    Simulation::with_instrumentation(scenario, config, sink, clock).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Batch;
    use adpm_core::ManagementMode;
    use adpm_scenarios::{lna_walkthrough, sensing_system};

    #[test]
    fn adpm_walkthrough_completes() {
        let scenario = lna_walkthrough();
        let stats = run_once(&scenario, SimulationConfig::adpm(7));
        assert!(stats.completed, "ops = {}", stats.operations);
        assert!(stats.operations > 0);
        assert!(stats.evaluations > stats.operations, "ADPM propagates per op");
    }

    #[test]
    fn conventional_walkthrough_completes() {
        let scenario = lna_walkthrough();
        let stats = run_once(&scenario, SimulationConfig::conventional(7));
        assert!(stats.completed, "ops = {}", stats.operations);
        // Conventional runs include explicit verification operations.
        assert!(stats.per_operation.iter().any(|s| s.kind == "verify"));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let scenario = lna_walkthrough();
        let a = run_once(&scenario, SimulationConfig::adpm(3));
        let b = run_once(&scenario, SimulationConfig::adpm(3));
        assert_eq!(a, b);
        let c = run_once(&scenario, SimulationConfig::adpm(4));
        // A different seed virtually always yields a different trace.
        assert!(a.operations != c.operations || a.evaluations != c.evaluations || a == c);
    }

    #[test]
    fn sensing_system_completes_in_both_modes() {
        let scenario = sensing_system();
        for (mode, seed) in [(ManagementMode::Adpm, 11), (ManagementMode::Conventional, 11)] {
            let stats = run_once(&scenario, SimulationConfig::for_mode(mode, seed));
            assert!(
                stats.completed,
                "{mode:?} run censored at {} ops",
                stats.operations
            );
        }
    }

    #[test]
    fn adpm_uses_fewer_operations_on_average() {
        // A small version of the paper's headline result, over a handful of
        // seeds to keep unit-test time low (the bench harness does 60+).
        let scenario = sensing_system();
        let mut adpm = Batch::new();
        let mut conv = Batch::new();
        for seed in 0..6 {
            adpm.push(run_once(&scenario, SimulationConfig::adpm(seed)));
            conv.push(run_once(&scenario, SimulationConfig::conventional(seed)));
        }
        assert!(adpm.completion_rate() > 0.99);
        assert!(conv.completion_rate() > 0.5);
        assert!(
            conv.operations().mean > adpm.operations().mean,
            "conventional {} <= adpm {}",
            conv.operations().mean,
            adpm.operations().mean
        );
    }

    #[test]
    fn unassigned_work_stalls_cleanly() {
        // The only problem with outputs has no designer: nobody can act, so
        // the engine must report a stall (incomplete run), not loop.
        let scenario = adpm_dddl::compile_source(
            r#"
            object o { property x : interval(0, 1); }
            problem orphan { outputs: o.x; }
            problem busywork { designer 0; }
            "#,
        )
        .expect("valid DDDL");
        let mut sim = Simulation::new(&scenario, SimulationConfig::adpm(1));
        let stats = sim.run();
        assert!(!stats.completed);
        assert_eq!(stats.operations, 0);
        assert_eq!(sim.step(), StepOutcome::Stalled);
    }

    #[test]
    fn operation_cap_censors_runs() {
        let scenario = sensing_system();
        let mut config = SimulationConfig::conventional(0);
        config.max_operations = 1;
        let stats = run_once(&scenario, config);
        assert!(!stats.completed);
        assert_eq!(stats.operations, 1);
    }

    #[test]
    fn step_reports_complete_after_termination() {
        let scenario = lna_walkthrough();
        let mut sim = Simulation::new(&scenario, SimulationConfig::adpm(5));
        let _ = sim.run();
        assert_eq!(sim.step(), StepOutcome::Complete);
    }

    #[test]
    fn instrumented_run_reconciles_with_run_stats() {
        use adpm_observe::{Counter, InMemorySink};
        use std::sync::Arc;

        let scenario = lna_walkthrough();
        let sink = Arc::new(InMemorySink::new());
        let stats = run_once_with_sink(&scenario, SimulationConfig::adpm(7), sink.clone());
        assert!(stats.completed);
        assert_eq!(sink.get(Counter::Operations), stats.operations as u64);
        assert_eq!(sink.get(Counter::Evaluations), stats.evaluations as u64);
        assert_eq!(sink.get(Counter::Spins), stats.spins as u64);
        assert_eq!(sink.get(Counter::TicksExecuted), stats.operations as u64);
        // ADPM propagates at setup and after every operation.
        assert_eq!(sink.get(Counter::Propagations), stats.operations as u64 + 1);
        assert!(sink.get(Counter::Waves) >= sink.get(Counter::Propagations));

        // The sink does not perturb the simulation itself.
        let untraced = run_once(&scenario, SimulationConfig::adpm(7));
        assert_eq!(stats, untraced);
    }

    #[test]
    fn traced_run_opens_with_run_start_and_closes_with_summary() {
        use adpm_observe::{parse_trace, JsonlSink};
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let scenario = lna_walkthrough();
        let buf = Buf::default();
        let sink = Arc::new(JsonlSink::new(Box::new(buf.clone())));
        let stats = run_once_with_sink(&scenario, SimulationConfig::adpm(7), sink.clone());
        sink.finish().unwrap();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines = parse_trace(&text).unwrap();
        assert_eq!(lines.first().map(|l| l.tag()), Some("run_start"));
        assert_eq!(lines.first().unwrap().str_field("mode"), Some("adpm"));
        let summary = lines.iter().rev().find(|l| l.tag() == "summary").unwrap();
        assert_eq!(
            summary.u64_field("operations"),
            Some(stats.operations as u64)
        );
        assert_eq!(summary.bool_field("completed"), Some(true));
        assert_eq!(lines.last().map(|l| l.tag()), Some("counters"));
        let ops = lines.iter().filter(|l| l.tag() == "op").count();
        assert_eq!(ops, stats.operations);
        let ticks = lines.iter().filter(|l| l.tag() == "tick").count();
        assert!(ticks >= ops);
    }
}
