//! # adpm-teamsim
//!
//! TeamSim — the design-process evaluation environment of *Application of
//! Constraint-Based Heuristics in Collaborative Design* (DAC 2001, §3).
//!
//! TeamSim simulates a design team working on a compiled DDDL scenario:
//! each [`SimulatedDesigner`] implements the paper's designer model
//! (`f_o = f_v ∘ f_a ∘ f_p` with the constraint-based heuristics of §2.3),
//! the [`Simulation`] engine drives them against a
//! [`DesignProcessManager`](adpm_core::DesignProcessManager) in either
//! management mode (the `λ` flag), and [`stats`]/[`report`] capture and
//! render the metrics the paper evaluates: executed operations, constraint
//! evaluations, violations per operation, and design spins.
//!
//! ```
//! use adpm_teamsim::{run_once, SimulationConfig};
//! use adpm_scenarios::lna_walkthrough;
//!
//! let scenario = lna_walkthrough();
//! let adpm = run_once(&scenario, SimulationConfig::adpm(42));
//! let conventional = run_once(&scenario, SimulationConfig::conventional(42));
//! assert!(adpm.completed && conventional.completed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod designer;
mod engine;
mod negotiation;
pub mod report;
pub mod stats;

pub use config::{ForwardOrdering, HeuristicToggles, SimulationConfig};
pub use designer::SimulatedDesigner;
pub use negotiation::NegotiationPolicy;
pub use engine::{run_once, run_once_instrumented, run_once_with_sink, Simulation, StepOutcome};
pub use stats::{percentile, Batch, OperationStat, RunStats, Summary};
