//! The simulated-designer model (paper §3.1.1, Fig. 6).
//!
//! A designer is a state-based system whose operation selection function
//! `f_o = f_v ∘ f_a ∘ f_p` composes:
//!
//! * `f_p` — *problem selection*: all assigned problems not in the
//!   `Waiting` state; empty when no violations are known and everything
//!   assigned is solved;
//! * `f_a` — *target property selection*: under violations, the property
//!   connected to the most known violations (`α`), preferring properties
//!   with a direction likely to fix many at once; otherwise the unbound
//!   output with the smallest feasible subspace (ADPM) or a random unbound
//!   output (conventional, which has no feasibility information);
//! * `f_v` — *value selection*: from the feasible subspace when one is
//!   known and non-empty (top or bottom end according to the direction
//!   that satisfies most constraints), otherwise a `|E_i|/100` delta step
//!   from the current value in the repair direction.
//!
//! The design history is consulted to avoid re-trying values that
//! previously led to violations (paper footnote 2) via a per-property tabu
//! list.
//!
//! The *same* model runs in both management modes; what differs is the
//! information the DPM feeds it. In conventional mode feasible subspaces
//! are never narrowed and violations appear only after verification runs,
//! so the corresponding branches of `f_a`/`f_v` degrade exactly as the
//! paper describes.

use crate::config::SimulationConfig;
use adpm_constraint::{
    helps_direction, local_helps_direction, ConstraintId, Domain, HelpsDirection, Interval,
    PropertyId, Value,
};
use adpm_core::{DesignProcessManager, DesignerId, ManagementMode, Operation, OperationRecord,
                ProblemId, ProblemStatus};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Relative tolerance for tabu-value matching.
const TABU_EPS: f64 = 1e-6;

/// A simulated designer: identity plus the slowly changing parts of the
/// paper's "internal state" (the rest — feasible subspaces, `α`, `β`,
/// statuses — is read fresh from the DPM at each decision, which is exactly
/// the "messages received from the DPM and NM" update of Fig. 6).
#[derive(Debug, Clone)]
pub struct SimulatedDesigner {
    id: DesignerId,
    /// Assignment *combinations* that previously led to violations (paper
    /// footnote 2): a value is tabu only together with the context hash of
    /// its constraint neighbours' assignments at failure time — the same
    /// value may be perfectly fine once a neighbour has moved.
    tabu: Vec<(PropertyId, f64, u64)>,
    /// The property, value, and neighbour-context of this designer's last
    /// assignment, used to attribute newly found violations to it.
    last_assignment: Option<(PropertyId, f64, u64)>,
    /// The last repair's target and the violation count right after it,
    /// used to rotate to a different lever when a repair made no progress.
    recent_repair: Option<(PropertyId, usize)>,
    /// Constraints this designer has ever seen violated. Once a
    /// requirement has failed a verification, the designer keeps it in
    /// mind when weighing later changes — even after its formal status is
    /// invalidated by a re-binding.
    seen_violated: BTreeSet<ConstraintId>,
}

impl SimulatedDesigner {
    /// Creates a designer with an empty history.
    pub fn new(id: DesignerId) -> Self {
        SimulatedDesigner {
            id,
            tabu: Vec::new(),
            last_assignment: None,
            recent_repair: None,
            seen_violated: BTreeSet::new(),
        }
    }

    /// This designer's id.
    pub fn id(&self) -> DesignerId {
        self.id
    }

    /// Number of tabu entries accumulated (diagnostic).
    pub fn tabu_len(&self) -> usize {
        self.tabu.len()
    }

    /// Updates the internal state from an executed operation's record —
    /// the designer's next-state function. If this designer's own
    /// assignment immediately produced new violations, the value is
    /// remembered as failed.
    pub fn observe(&mut self, record: &OperationRecord) {
        if record.operation.designer() != self.id {
            return;
        }
        if let Some((pid, value, context)) = self.last_assignment.take() {
            // Only attribute the outcome to the remembered assignment if
            // this record actually executed it — a proposal the DPM
            // rejected leaves a stale entry that must not poison the tabu
            // list when an unrelated operation (e.g. a verification run)
            // surfaces violations.
            if record.operation.operator().target_property() != Some(pid) {
                return;
            }
            if !record.new_violations.is_empty() {
                self.remember_failure(pid, value, context);
            }
            if !record.operation.repairs().is_empty() {
                self.recent_repair = Some((pid, record.violations_after));
            }
        }
    }

    fn remember_failure(&mut self, pid: PropertyId, value: f64, context: u64) {
        if !self.is_tabu(pid, value, context) {
            self.tabu.push((pid, value, context));
        }
    }

    /// Whether `(pid, value)` previously failed *in the current context* —
    /// i.e. with the same neighbour assignments.
    fn is_tabu(&self, pid: PropertyId, value: f64, context: u64) -> bool {
        self.tabu.iter().any(|(p, v, c)| {
            *p == pid
                && *c == context
                && (v - value).abs() <= TABU_EPS * (1.0 + v.abs().max(value.abs()))
        })
    }

    /// Hash of the current assignments of every property sharing a
    /// constraint with `pid` — the "combination" part of the paper's
    /// avoid-failed-combinations rule.
    fn context_hash(net: &adpm_constraint::ConstraintNetwork, pid: PropertyId) -> u64 {
        let mut neighbours: BTreeSet<PropertyId> = net
            .constraints_of(pid)
            .iter()
            .flat_map(|cid| net.constraint(*cid).arguments())
            .collect();
        neighbours.remove(&pid);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for n in neighbours {
            if let Some(v) = net.assignment(n).and_then(|v| v.as_number()) {
                n.index().hash(&mut hasher);
                v.to_bits().hash(&mut hasher);
            }
        }
        hasher.finish()
    }

    /// The operation selection function `f_o`: proposes the next operation,
    /// or `None` when the designer has nothing to do.
    pub fn choose(
        &mut self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        rng: &mut StdRng,
    ) -> Option<Operation> {
        let problems = self.addressable_problems(dpm);
        // Team awareness: remember every violation currently on the table.
        self.seen_violated.extend(dpm.known_violations());
        if problems.is_empty() {
            return None;
        }
        if let Some(op) = self.repair(dpm, config, &problems, rng) {
            return Some(op);
        }
        if let Some(op) = self.forward(dpm, config, &problems, rng) {
            return Some(op);
        }
        if config.mode == ManagementMode::Conventional {
            if let Some(op) = self.verify(dpm, &problems) {
                return Some(op);
            }
        }
        None
    }

    /// `f_p`: assigned problems that are not `Waiting`.
    fn addressable_problems(&self, dpm: &DesignProcessManager) -> Vec<ProblemId> {
        dpm.problems()
            .assigned_to(self.id)
            .into_iter()
            .filter(|pid| dpm.problems().problem(*pid).status() != ProblemStatus::Waiting)
            .collect()
    }

    /// Output properties of the given problems, in stable order.
    fn my_outputs(&self, dpm: &DesignProcessManager, problems: &[ProblemId]) -> Vec<PropertyId> {
        let mut out: Vec<PropertyId> = problems
            .iter()
            .flat_map(|pid| dpm.problems().problem(*pid).outputs().to_vec())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn problem_of_output(
        &self,
        dpm: &DesignProcessManager,
        problems: &[ProblemId],
        property: PropertyId,
    ) -> ProblemId {
        problems
            .iter()
            .copied()
            .find(|pid| dpm.problems().problem(*pid).has_output(property))
            .unwrap_or(problems[0])
    }

    // --- repair -----------------------------------------------------------

    /// Repair branch of `f_a`/`f_v`: fix a known violation by modifying the
    /// connected property most likely to resolve many at once.
    fn repair(
        &mut self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        problems: &[ProblemId],
        rng: &mut StdRng,
    ) -> Option<Operation> {
        let known: BTreeSet<ConstraintId> = dpm.known_violations().into_iter().collect();
        if known.is_empty() {
            return None;
        }
        let net = dpm.network();
        let outputs = self.my_outputs(dpm, problems);
        // Candidates: my outputs connected to at least one known violation.
        let mut candidates: Vec<(PropertyId, usize)> = outputs
            .iter()
            .map(|p| {
                let alpha = known
                    .iter()
                    .filter(|cid| net.constraint(**cid).involves(*p))
                    .count();
                (*p, alpha)
            })
            .filter(|(_, alpha)| *alpha > 0)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // `f_a`: prefer high α (ties resolved randomly, as in the paper).
        if config.heuristics.alpha_repair {
            shuffle(&mut candidates, rng);
            candidates.sort_by_key(|(_, alpha)| std::cmp::Reverse(*alpha));
        } else {
            shuffle(&mut candidates, rng);
        }
        // Lever rotation: if the last repair targeted the same property and
        // the number of known violations did not drop, try a different
        // connected property this time — real designers stop turning a knob
        // that is not working (and this breaks conventional-mode ping-pong
        // between two requirements pinching one value).
        if let Some((prev_target, prev_violations)) = self.recent_repair {
            if candidates.len() > 1
                && candidates[0].0 == prev_target
                && known.len() >= prev_violations
            {
                candidates.rotate_left(1);
            }
        }
        let (target, _) = candidates[0];
        let my_violations: Vec<ConstraintId> = known
            .iter()
            .copied()
            .filter(|cid| net.constraint(*cid).involves(target))
            .collect();

        let direction = if config.heuristics.direction_repair {
            self.majority_direction(dpm, config, target, &my_violations)
        } else {
            None
        };
        let context = Self::context_hash(net, target);
        let mut value =
            self.repair_value(dpm, config, target, &my_violations, direction, context, rng)?;
        // A repair that re-binds the current value would be a wasted
        // operation; step away instead.
        if let Some(current) = net.assignment(target).and_then(|v| v.as_number()) {
            if (value - current).abs() <= 1e-9 * (1.0 + current.abs()) {
                let hull = net
                    .property(target)
                    .initial_domain()
                    .enclosing_interval()
                    .unwrap_or(Interval::new(-1e6, 1e6));
                let initial = net.property(target).initial_domain().clone();
                value = self.delta_step(
                    target, current, direction, context, &hull, &initial, config, rng,
                );
            }
        }
        self.last_assignment = Some((target, value, context));
        let problem = self.problem_of_output(dpm, problems, target);
        Some(
            Operation::assign(self.id, problem, target, Value::number(value))
                .with_repairs(my_violations),
        )
    }

    /// Majority vote over the directions that help the violated constraints
    /// connected to `target` (global monotonicity first, local probing at
    /// the current value as fallback).
    fn majority_direction(
        &self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        target: PropertyId,
        violations: &[ConstraintId],
    ) -> Option<HelpsDirection> {
        let net = dpm.network();
        let current = net.assignment(target).and_then(|v| v.as_number());
        let probe = config.delta_fraction * self.initial_width(dpm, target).max(1e-9);
        let mut ups = 0usize;
        let mut downs = 0usize;
        for cid in violations {
            let dir = helps_direction(net, *cid, target).or_else(|| {
                current.and_then(|v| local_helps_direction(net, *cid, target, v, probe))
            });
            match dir {
                Some(HelpsDirection::Up) => ups += 1,
                Some(HelpsDirection::Down) => downs += 1,
                None => {}
            }
        }
        match ups.cmp(&downs) {
            std::cmp::Ordering::Greater => Some(HelpsDirection::Up),
            std::cmp::Ordering::Less => Some(HelpsDirection::Down),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// `f_v` for repairs.
    ///
    /// Designers exploit the margin information their tool runs produce
    /// ("making use of trade-offs produced by constraint margins to fix
    /// violations", paper §1): the repair value is the one that satisfies
    /// the most constraints the designer can check — which is how the §2.4
    /// designer fixes two violations in a single iteration. What a designer
    /// *can check* differs by mode (see
    /// [`checkable_constraints`](Self::checkable_constraints)); when no
    /// improving value exists, repair degrades to the paper's `|E_i|/100`
    /// delta stepping in the majority direction.
    #[allow(clippy::too_many_arguments)]
    fn repair_value(
        &self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        target: PropertyId,
        violations: &[ConstraintId],
        direction: Option<HelpsDirection>,
        context: u64,
        rng: &mut StdRng,
    ) -> Option<f64> {
        let net = dpm.network();
        let current = net.assignment(target).and_then(|v| v.as_number());
        let initial = net.property(target).initial_domain().clone();
        let adpm_info = config.mode == ManagementMode::Adpm && config.heuristics.feasible_values;

        if config.heuristics.direction_repair {
            if let (Some(v), Some(dir)) = (current, direction) {
                // A clear majority direction: move just past the margin
                // boundary (minimal-change repair).
                if let Some(repaired) =
                    margin_repair_value(dpm, target, violations, v, dir, &initial)
                {
                    if !self.is_tabu(target, repaired, context) {
                        return Some(repaired);
                    }
                }
            }
            // No single direction (conflicting requirements), or the
            // margin-repair landing spot already failed once (tabu): scan
            // the axis for the value satisfying the most checkable
            // constraints instead of random-walking.
            if let Some(v) = current {
                if let Some(repaired) =
                    self.best_scoring_value(dpm, config, target, violations, v, context, &initial)
                {
                    return Some(repaired);
                }
            }
        }
        // Unbound conflicted property: choose from its feasible subspace
        // (ADPM only — conventional designers have no feasibility data).
        if adpm_info && current.is_none() {
            let feasible = net.feasible(target).clone();
            if !feasible.is_empty() {
                if let Some(v) = self.pick_from_domain(&feasible, direction, rng) {
                    return Some(v);
                }
            }
        }

        // "Choose from initial subspace": delta step inside E_i.
        let hull = initial
            .enclosing_interval()
            .unwrap_or(Interval::new(-1e6, 1e6));
        match current {
            Some(v) => Some(self.delta_step(
                target, v, direction, context, &hull, &initial, config, rng,
            )),
            None => self.pick_from_domain(&initial, direction, rng),
        }
    }

    /// The constraints a designer can evaluate mentally when weighing a
    /// repair value for `target`:
    ///
    /// * **ADPM** — every constraint involving the target: the DCM keeps
    ///   all statuses and margins fresh after each operation;
    /// * **conventional** — only the constraints of the designer's own
    ///   problems (whose mathematics they master) plus the constraints
    ///   currently *known* violated (whose margins the verification run
    ///   just exposed). Cross-subsystem constraints they have not seen fail
    ///   are invisible — which is exactly why conventional repairs keep
    ///   breaking them and integration spins pile up.
    fn checkable_constraints(
        &self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        target: PropertyId,
        violations: &[ConstraintId],
    ) -> Vec<ConstraintId> {
        let net = dpm.network();
        if config.mode == ManagementMode::Adpm {
            return net.constraints_of(target).to_vec();
        }
        let mut out: Vec<ConstraintId> = violations
            .iter()
            .copied()
            .chain(self.seen_violated.iter().copied())
            .filter(|cid| net.constraint(*cid).involves(target))
            .collect();
        for problem in dpm.problems().assigned_to(self.id) {
            for cid in dpm.problems().problem(problem).constraints() {
                if net.constraint(*cid).involves(target) {
                    out.push(*cid);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Scans the target's axis for the value satisfying the most checkable
    /// constraints (violated ones weighted double so actual repairs beat
    /// do-nothing) and returns the midpoint of the best contiguous run
    /// closest to the current value. Returns `None` when no value scores
    /// strictly better than the current one — moving would not help.
    #[allow(clippy::too_many_arguments)]
    fn best_scoring_value(
        &self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        target: PropertyId,
        violations: &[ConstraintId],
        current: f64,
        context: u64,
        initial: &Domain,
    ) -> Option<f64> {
        let net = dpm.network();
        let checkable = self.checkable_constraints(dpm, config, target, violations);
        if checkable.is_empty() {
            return None;
        }
        let violated: BTreeSet<ConstraintId> = violations.iter().copied().collect();
        let point = |id: PropertyId, x: f64| {
            if id == target {
                return x;
            }
            if let Some(v) = net.assignment(id).and_then(|v| v.as_number()) {
                return v;
            }
            let iv = net.effective_interval(id);
            if iv.is_bounded() {
                iv.midpoint()
            } else {
                0.0
            }
        };
        let adpm = config.mode == ManagementMode::Adpm;
        let score_at = |x: f64| -> i64 {
            checkable
                .iter()
                .map(|cid| {
                    // ADPM designers judge a candidate the way the DCM will
                    // after the next propagation (interval statuses over the
                    // current box); conventional designers can only run the
                    // numbers at concrete points.
                    let ok = if adpm {
                        let lookup = |id: PropertyId| {
                            if id == target {
                                Interval::singleton(x)
                            } else {
                                net.effective_interval(id)
                            }
                        };
                        !net.constraint(*cid).status(&lookup).is_violated()
                    } else {
                        net.constraint(*cid).check_point(&|id| point(id, x))
                    };
                    let weight = if violated.contains(cid) { 2 } else { 1 };
                    if ok {
                        weight
                    } else {
                        0
                    }
                })
                .sum()
        };

        // Candidate positions: discrete members, or a uniform scan of the
        // continuous axis.
        let candidates: Vec<f64> = match initial.candidates() {
            Some(values) => values.iter().filter_map(|v| v.as_number()).collect(),
            None => {
                let hull = initial.enclosing_interval()?;
                if !hull.is_bounded() || hull.is_singleton() {
                    return None;
                }
                hull.sample(129)
            }
        };
        let current_score = score_at(current);
        let scores: Vec<i64> = candidates.iter().map(|x| score_at(*x)).collect();
        let best = *scores.iter().max()?;
        if best <= current_score {
            return None;
        }
        if initial.candidates().is_some() {
            // Discrete: the best member closest to the current value.
            return candidates
                .iter()
                .zip(&scores)
                .filter(|(_, s)| **s == best)
                .map(|(x, _)| *x)
                .filter(|x| !self.is_tabu(target, *x, context))
                .min_by(|a, b| {
                    (a - current)
                        .abs()
                        .partial_cmp(&(b - current).abs())
                        .expect("finite")
                });
        }
        // Continuous: midpoints of maximal-score runs; choose the run
        // closest to the current value (minimal-change principle).
        let mut runs: Vec<(f64, f64)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, s) in scores.iter().enumerate() {
            if *s == best && start.is_none() {
                start = Some(i);
            }
            if (*s != best || i + 1 == scores.len()) && start.is_some() {
                let end = if *s == best { i } else { i - 1 };
                runs.push((candidates[start.take().expect("set")], candidates[end]));
            }
        }
        runs.into_iter()
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .filter(|x| !self.is_tabu(target, *x, context))
            .min_by(|a, b| {
                (a - current)
                    .abs()
                    .partial_cmp(&(b - current).abs())
                    .expect("finite")
            })
    }

    /// Moves `current` by `delta_fraction * |E_i|` in `direction` (random
    /// when unknown), avoiding tabu values, clamped into `bounds` and — for
    /// discrete domains — snapped to the nearest remaining candidate.
    #[allow(clippy::too_many_arguments)]
    fn delta_step(
        &self,
        target: PropertyId,
        current: f64,
        direction: Option<HelpsDirection>,
        context: u64,
        bounds: &Interval,
        initial: &Domain,
        config: &SimulationConfig,
        rng: &mut StdRng,
    ) -> f64 {
        let width = initial
            .enclosing_interval()
            .map(|iv| if iv.is_bounded() { iv.width() } else { 2e6 })
            .unwrap_or(2e6);
        let base = config.delta_fraction * width;
        let sign = match direction {
            Some(d) => d.sign(),
            None => {
                if rng.gen_bool(0.5) {
                    1.0
                } else {
                    -1.0
                }
            }
        };
        // Scale the step up while the landing spot is tabu (or stuck at a
        // clamped bound), so repeated failures explore faster.
        let mut scale = 1.0 + rng.gen_range(0.0..0.5);
        for _ in 0..16 {
            let candidate = bounds.clamp(current + sign * base * scale);
            let snapped = snap_to_domain(candidate, initial, bounds);
            let moved = (snapped - current).abs() > 1e-12 * (1.0 + current.abs());
            if moved && !self.is_tabu(target, snapped, context) {
                return snapped;
            }
            scale *= 2.0;
        }
        // Everything nearby is tabu or pinned: jump randomly inside bounds.
        random_in(bounds, initial, rng)
    }

    /// Picks a value from a domain honouring the direction hint: the "top
    /// or bottom value based on what may satisfy most constraints" rule,
    /// with a small inset so boundary rounding cannot immediately violate
    /// the binding constraint.
    fn pick_from_domain(
        &self,
        domain: &Domain,
        direction: Option<HelpsDirection>,
        rng: &mut StdRng,
    ) -> Option<f64> {
        if domain.is_empty() {
            return None;
        }
        if let Some(candidates) = domain.candidates() {
            let numbers: Vec<f64> = candidates.iter().filter_map(|v| v.as_number()).collect();
            if numbers.is_empty() {
                return None;
            }
            return Some(match direction {
                Some(HelpsDirection::Up) => *numbers.last().expect("non-empty"),
                Some(HelpsDirection::Down) => numbers[0],
                None => numbers[rng.gen_range(0..numbers.len())],
            });
        }
        let iv = domain.enclosing_interval()?;
        if iv.is_empty() {
            return None;
        }
        if iv.is_singleton() {
            return Some(iv.lo());
        }
        let hull = bounded(&iv);
        let fraction = match direction {
            Some(HelpsDirection::Up) => rng.gen_range(0.75..0.95),
            Some(HelpsDirection::Down) => rng.gen_range(0.05..0.25),
            None => rng.gen_range(0.2..0.8),
        };
        Some(hull.lo() + fraction * hull.width())
    }

    // --- forward work -------------------------------------------------------

    /// Forward branch of `f_a`/`f_v`: bind an unbound output.
    fn forward(
        &mut self,
        dpm: &DesignProcessManager,
        config: &SimulationConfig,
        problems: &[ProblemId],
        rng: &mut StdRng,
    ) -> Option<Operation> {
        let net = dpm.network();
        let open_problems: Vec<ProblemId> = problems
            .iter()
            .copied()
            .filter(|p| dpm.problems().problem(*p).status() != ProblemStatus::Solved)
            .collect();
        let mut unbound: Vec<PropertyId> = self
            .my_outputs(dpm, &open_problems)
            .into_iter()
            .filter(|p| !net.is_bound(*p))
            .collect();
        if unbound.is_empty() {
            return None;
        }

        // `f_a`: the configured ordering (ADPM; §2.3.1 smallest feasible
        // subspace by default, §2.3.2 β variants selectable); random
        // otherwise.
        shuffle(&mut unbound, rng);
        let target = if config.mode == ManagementMode::Adpm && config.heuristics.feasible_ordering {
            dpm.heuristics()
                .map(|report| match config.heuristics.forward_ordering {
                    crate::config::ForwardOrdering::SmallestFeasible => {
                        report.rank_by_smallest_feasible(&unbound)[0]
                    }
                    crate::config::ForwardOrdering::Beta => report.rank_by_beta(&unbound)[0],
                    crate::config::ForwardOrdering::BetaIndirect => {
                        report.rank_by_beta_indirect(&unbound)[0]
                    }
                })
                .unwrap_or(unbound[0])
        } else {
            unbound[0]
        };

        // `f_v`: choose from the feasible subspace (ADPM) or the declared
        // range `E_i` (conventional — no feasibility information exists),
        // leaning towards the end favoured by the monotonicity vote over
        // the connected constraints. The vote itself is engineering
        // knowledge and available in both modes (paper §3.1.1 keeps the
        // monotonicity lists in the designer's internal state regardless
        // of `λ`).
        let initial = net.property(target).initial_domain().clone();
        // With probability `choice_noise` the designer acts on secondary
        // objectives and a stale view of the design (did not re-consult the
        // object browser): the monotonicity vote is ignored and the value
        // comes from the declared range instead of the current feasible
        // subspace. This is what produces ADPM's (few) violations and its
        // run-to-run variability, mirroring the §2.4 story where a
        // power-motivated choice violates the gain requirement.
        let noisy = rng.gen_bool(config.choice_noise);
        // Acting on a fully stale view (not consulting the browser at all)
        // is rarer than merely weighing secondary objectives.
        let stale = noisy && rng.gen_bool(0.3);
        let use_feasible = !stale
            && config.mode == ManagementMode::Adpm
            && config.heuristics.feasible_values;
        let domain = if use_feasible && !net.feasible(target).is_empty() {
            net.feasible(target).clone()
        } else {
            initial.clone()
        };
        let direction = if noisy {
            None
        } else {
            self.constraint_direction_vote(dpm, target)
        };
        let mut value = self.pick_from_domain(&domain, direction, rng)?;
        // History: avoid value combinations that previously led to
        // violations.
        let context = Self::context_hash(net, target);
        let mut tries = 0;
        while self.is_tabu(target, value, context) && tries < 8 {
            value = random_in(&domain.enclosing_interval()?, &domain, rng);
            tries += 1;
        }
        self.last_assignment = Some((target, value, context));
        let problem = self.problem_of_output(dpm, &open_problems, target);
        Some(Operation::assign(self.id, problem, target, Value::number(value)))
    }

    /// Direction vote across *all* constraints connected to `target`
    /// (not just violated ones) — used when choosing the first value, per
    /// the paper's "top or bottom value based on what may satisfy most
    /// constraints".
    fn constraint_direction_vote(
        &self,
        dpm: &DesignProcessManager,
        target: PropertyId,
    ) -> Option<HelpsDirection> {
        let net = dpm.network();
        let mut ups = 0usize;
        let mut downs = 0usize;
        for cid in net.constraints_of(target) {
            match helps_direction(net, *cid, target) {
                Some(HelpsDirection::Up) => ups += 1,
                Some(HelpsDirection::Down) => downs += 1,
                None => {}
            }
        }
        match ups.cmp(&downs) {
            std::cmp::Ordering::Greater => Some(HelpsDirection::Up),
            std::cmp::Ordering::Less => Some(HelpsDirection::Down),
            std::cmp::Ordering::Equal => None,
        }
    }

    // --- verification ---------------------------------------------------------

    /// Conventional flow only: request a verification run for a problem
    /// whose outputs are bound but whose constraints have unverified
    /// (Consistent) status. Cross-subproblem constraints — those of a
    /// parent problem — are verified only once all subproblems are solved
    /// (paper §3.1.2).
    fn verify(&self, dpm: &DesignProcessManager, problems: &[ProblemId]) -> Option<Operation> {
        let net = dpm.network();
        for pid in problems {
            let problem = dpm.problems().problem(*pid);
            if problem.status() == ProblemStatus::Solved {
                continue;
            }
            let outputs_bound = problem.outputs().iter().all(|p| net.is_bound(*p));
            if !outputs_bound {
                continue;
            }
            if !problem.children().is_empty() {
                let children_solved = problem
                    .children()
                    .iter()
                    .all(|c| dpm.problems().problem(*c).status() == ProblemStatus::Solved);
                if !children_solved {
                    continue;
                }
            }
            let has_unverified = problem.constraints().iter().any(|cid| {
                net.all_arguments_bound(*cid)
                    && net.status(*cid) == adpm_constraint::ConstraintStatus::Consistent
            });
            if has_unverified {
                return Some(Operation::verify(self.id, *pid));
            }
        }
        None
    }

    fn initial_width(&self, dpm: &DesignProcessManager, pid: PropertyId) -> f64 {
        dpm.network()
            .property(pid)
            .initial_domain()
            .enclosing_interval()
            .map(|iv| if iv.is_bounded() { iv.width() } else { 2e6 })
            .unwrap_or(2e6)
    }
}

/// Finds the smallest move of `target` from `current` in `direction` that
/// turns every *fixable* violated constraint's margin positive, with a
/// small overshoot for robustness. Returns `None` when no violated
/// constraint can be fixed by moving this property (the move would be
/// wasted), so the caller falls back to tie-break scoring or delta
/// stepping.
fn margin_repair_value(
    dpm: &DesignProcessManager,
    target: PropertyId,
    violations: &[ConstraintId],
    current: f64,
    direction: HelpsDirection,
    initial: &Domain,
) -> Option<f64> {
    let net = dpm.network();
    let hull = initial.enclosing_interval()?;
    if !hull.is_bounded() {
        return None;
    }
    let extreme = match direction {
        HelpsDirection::Up => hull.hi(),
        HelpsDirection::Down => hull.lo(),
    };
    if (extreme - current).abs() < 1e-12 * (1.0 + current.abs()) {
        return None; // already at the bound; cannot move further
    }
    let point = |id: PropertyId, x: f64| {
        if id == target {
            return x;
        }
        if let Some(v) = net.assignment(id).and_then(|v| v.as_number()) {
            return v;
        }
        let iv = net.effective_interval(id);
        if iv.is_bounded() {
            iv.midpoint()
        } else {
            0.0
        }
    };
    let mut needed: Option<f64> = None;
    for cid in violations {
        let constraint = net.constraint(*cid);
        if !constraint.involves(target) {
            continue;
        }
        let margin_at = |x: f64| constraint.margin(&|id| point(id, x));
        if margin_at(current) >= 0.0 {
            continue; // already fine at the current point (multi-property conflict)
        }
        // Walk towards the extreme and find the first sample with a
        // non-negative margin; sampling (rather than an endpoint check)
        // also handles *band* constraints like `|f_c - f_req| <= 5` whose
        // margin turns positive and then negative again along the way.
        const STEPS: usize = 64;
        let mut crossing: Option<(f64, f64)> = None;
        for k in 1..=STEPS {
            let x = current + (extreme - current) * (k as f64) / (STEPS as f64);
            if margin_at(x) >= 0.0 {
                let prev = current + (extreme - current) * ((k - 1) as f64) / (STEPS as f64);
                crossing = Some((prev, x));
                break;
            }
        }
        let Some((mut bad, mut good)) = crossing else {
            continue; // unfixable by this property alone
        };
        for _ in 0..60 {
            let mid = 0.5 * (bad + good);
            if margin_at(mid) >= 0.0 {
                good = mid;
            } else {
                bad = mid;
            }
        }
        needed = Some(match (needed, direction) {
            (None, _) => good,
            (Some(n), HelpsDirection::Up) => n.max(good),
            (Some(n), HelpsDirection::Down) => n.min(good),
        });
    }
    let needed = needed?;
    // Discrete domains: take the nearest member *at or beyond* the needed
    // value in the repair direction — rounding back towards the current
    // value would turn the repair into a no-op.
    if let Some(candidates) = initial.candidates() {
        let numbers: Vec<f64> = candidates.iter().filter_map(|v| v.as_number()).collect();
        return match direction {
            HelpsDirection::Up => numbers
                .iter()
                .copied()
                .filter(|x| *x >= needed - 1e-9)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
            HelpsDirection::Down => numbers
                .iter()
                .copied()
                .filter(|x| *x <= needed + 1e-9)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
        }
        .filter(|x| (x - current).abs() > 1e-9);
    }
    // Overshoot slightly past the exact boundary so rounding and the next
    // propagation cannot flag the same constraint again - but keep the
    // overshoot proportional to the move so narrow feasible windows (e.g.
    // a bandwidth pinned between two requirements) are not jumped across.
    let overshoot = (0.25 * (needed - current).abs()).min(0.05 * (extreme - needed).abs());
    Some(hull.clamp(needed + direction.sign() * overshoot))
}

/// Clamps an interval to a large finite box (random sampling needs bounds).
fn bounded(iv: &Interval) -> Interval {
    Interval::new(iv.lo().max(-1e6), iv.hi().min(1e6))
}

/// Uniform random value inside the interval, snapped to the domain's
/// discrete candidates when it has any.
fn random_in(iv: &Interval, domain: &Domain, rng: &mut StdRng) -> f64 {
    if let Some(candidates) = domain.candidates() {
        let numbers: Vec<f64> = candidates.iter().filter_map(|v| v.as_number()).collect();
        if !numbers.is_empty() {
            return numbers[rng.gen_range(0..numbers.len())];
        }
    }
    let hull = bounded(iv);
    if hull.is_singleton() || hull.is_empty() {
        return hull.lo();
    }
    rng.gen_range(hull.lo()..hull.hi())
}

/// Snaps a continuous candidate to the nearest member of a discrete domain
/// (no-op for interval domains), then clamps into `bounds`.
fn snap_to_domain(value: f64, domain: &Domain, bounds: &Interval) -> f64 {
    let v = bounds.clamp(value);
    if let Some(candidates) = domain.candidates() {
        let numbers: Vec<f64> = candidates.iter().filter_map(|x| x.as_number()).collect();
        if let Some(nearest) = numbers
            .iter()
            .min_by(|a, b| (*a - v).abs().partial_cmp(&(*b - v).abs()).expect("finite"))
        {
            return *nearest;
        }
    }
    v
}

/// Fisher–Yates shuffle (avoids pulling in rand's slice extension trait).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_core::DpmConfig;
    use adpm_scenarios::lna_walkthrough;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn adpm_setup() -> (DesignProcessManager, Vec<SimulatedDesigner>) {
        let s = lna_walkthrough();
        let dpm = s.build_dpm(DpmConfig::adpm());
        let designers = dpm
            .designers()
            .iter()
            .map(|d| SimulatedDesigner::new(*d))
            .collect();
        (dpm, designers)
    }

    #[test]
    fn forward_choice_targets_own_unbound_output() {
        let (dpm, mut designers) = adpm_setup();
        let config = SimulationConfig::adpm(1);
        let op = designers[1].choose(&dpm, &config, &mut rng()).expect("has work");
        let target = op.operator().target_property().expect("assign op");
        // Designer 1 owns the analog problem's outputs.
        let analog = dpm.problems().assigned_to(designers[1].id())[0];
        assert!(dpm.problems().problem(analog).has_output(target));
    }

    #[test]
    fn waiting_parent_is_not_addressed() {
        let (dpm, mut designers) = adpm_setup();
        // Designer 0 owns only the root, which is Waiting on its children;
        // with no violations known there is nothing to do.
        let config = SimulationConfig::adpm(1);
        assert!(designers[0].choose(&dpm, &config, &mut rng()).is_none());
    }

    #[test]
    fn conventional_designer_requests_verification_when_bound() {
        let s = lna_walkthrough();
        let mut dpm = s.build_dpm(DpmConfig::conventional());
        let config = SimulationConfig::conventional(1);
        let mut designer = SimulatedDesigner::new(dpm.designers()[2]);
        let mut r = rng();
        // Bind both filter outputs.
        for _ in 0..2 {
            let op = designer.choose(&dpm, &config, &mut r).expect("has work");
            assert_eq!(op.operator().kind(), "assign");
            let record = dpm.execute(op).unwrap();
            designer.observe(&record);
        }
        // Outputs bound; next action must be a verification request.
        let op = designer.choose(&dpm, &config, &mut r).expect("verify next");
        assert_eq!(op.operator().kind(), "verify");
    }

    #[test]
    fn repair_prefers_high_alpha_property_with_direction() {
        // Recreate the walkthrough's α = 2 situation and check the designer
        // targets Diff-pair-W and moves it up.
        let s = lna_walkthrough();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        let d = dpm.designers().to_vec();
        let top = dpm.problems().root().unwrap();
        let analog = dpm.problems().problem(top).children()[0];
        let filter = dpm.problems().problem(top).children()[1];
        let w = s.property("LNA+Mixer", "Diff-pair-W").unwrap();
        for (pid, problem, designer, value) in [
            (s.property("Filter", "beam-len").unwrap(), filter, d[2], 13.0),
            (s.property("Filter", "flt-loss").unwrap(), filter, d[2], 19.5),
            (s.property("LNA+Mixer", "Freq-ind").unwrap(), analog, d[1], 0.2),
            (w, analog, d[1], 3.0),
            (s.property("system", "req-sys-gain").unwrap(), top, d[0], 30.0),
            (s.property("system", "req-zerr").unwrap(), top, d[0], 35.0),
        ] {
            dpm.execute(Operation::assign(designer, problem, pid, Value::number(value)))
                .unwrap();
        }
        assert_eq!(dpm.known_violations().len(), 2);
        let config = SimulationConfig::adpm(1);
        let mut designer = SimulatedDesigner::new(d[1]);
        let op = designer.choose(&dpm, &config, &mut rng()).expect("repair");
        assert_eq!(op.operator().target_property(), Some(w));
        assert_eq!(op.repairs().len(), 2);
        // The new value moves up from 3.0 (both violations helped by Up).
        let new_value = match op.operator() {
            adpm_core::Operator::Assign { value, .. } => value.as_number().unwrap(),
            other => panic!("expected assign, got {other:?}"),
        };
        assert!(new_value > 3.0, "expected an increase, got {new_value}");
        // Executing the repair clears both violations.
        dpm.execute(op).unwrap();
        assert!(dpm.known_violations().is_empty(), "repair value {new_value}");
    }

    #[test]
    fn observe_remembers_failed_values() {
        let mut designer = SimulatedDesigner::new(DesignerId::new(1));
        designer.last_assignment = Some((PropertyId::new(3), 2.5, 77));
        let record = OperationRecord {
            sequence: 1,
            operation: Operation::assign(
                DesignerId::new(1),
                ProblemId::new(0),
                PropertyId::new(3),
                Value::number(2.5),
            ),
            evaluations: 1,
            violations_after: 1,
            new_violations: vec![ConstraintId::new(0)],
            spin: false,
        };
        designer.observe(&record);
        assert_eq!(designer.tabu_len(), 1);
        assert!(designer.is_tabu(PropertyId::new(3), 2.5, 77));
        assert!(!designer.is_tabu(PropertyId::new(3), 2.6, 77));
        // Same value in a *different* neighbour context is not tabu — the
        // paper forbids failed combinations, not values.
        assert!(!designer.is_tabu(PropertyId::new(3), 2.5, 78));
    }

    #[test]
    fn observe_ignores_records_for_other_operations() {
        // A rejected proposal leaves a stale last_assignment; a later
        // verify record (new violations!) must not tabu the never-executed
        // value.
        let mut designer = SimulatedDesigner::new(DesignerId::new(1));
        designer.last_assignment = Some((PropertyId::new(3), 2.5, 77));
        let record = OperationRecord {
            sequence: 1,
            operation: Operation::verify(DesignerId::new(1), ProblemId::new(0)),
            evaluations: 1,
            violations_after: 1,
            new_violations: vec![ConstraintId::new(0)],
            spin: false,
        };
        designer.observe(&record);
        assert_eq!(designer.tabu_len(), 0, "stale assignment was attributed");
    }

    #[test]
    fn observe_ignores_other_designers() {
        let mut designer = SimulatedDesigner::new(DesignerId::new(1));
        designer.last_assignment = Some((PropertyId::new(3), 2.5, 77));
        let record = OperationRecord {
            sequence: 1,
            operation: Operation::verify(DesignerId::new(0), ProblemId::new(0)),
            evaluations: 1,
            violations_after: 1,
            new_violations: vec![ConstraintId::new(0)],
            spin: false,
        };
        designer.observe(&record);
        assert_eq!(designer.tabu_len(), 0);
    }

    #[test]
    fn pick_from_domain_honours_direction() {
        let designer = SimulatedDesigner::new(DesignerId::new(0));
        let mut r = rng();
        let d = Domain::interval(0.0, 10.0);
        let up = designer
            .pick_from_domain(&d, Some(HelpsDirection::Up), &mut r)
            .unwrap();
        let down = designer
            .pick_from_domain(&d, Some(HelpsDirection::Down), &mut r)
            .unwrap();
        assert!((8.0..=10.0).contains(&up));
        assert!((0.0..2.0).contains(&down));
        let set = Domain::number_set([1.0, 2.0, 4.0]);
        assert_eq!(
            designer.pick_from_domain(&set, Some(HelpsDirection::Up), &mut r),
            Some(4.0)
        );
        assert_eq!(
            designer.pick_from_domain(&set, Some(HelpsDirection::Down), &mut r),
            Some(1.0)
        );
        assert!(designer
            .pick_from_domain(&Domain::empty(), None, &mut r)
            .is_none());
    }

    #[test]
    fn snap_to_domain_picks_nearest_candidate() {
        let set = Domain::number_set([8.0, 10.0, 12.0, 14.0, 16.0]);
        let bounds = Interval::new(8.0, 16.0);
        assert_eq!(snap_to_domain(10.7, &set, &bounds), 10.0);
        assert_eq!(snap_to_domain(11.1, &set, &bounds), 12.0);
        assert_eq!(snap_to_domain(99.0, &set, &bounds), 16.0);
        let iv = Domain::interval(0.0, 1.0);
        assert_eq!(snap_to_domain(0.4, &iv, &Interval::new(0.0, 1.0)), 0.4);
    }

    /// Builds a tiny DPM where `x` is pinched between `lo: x >= 8` (up)
    /// and `hi: x <= 2` (down) — a direction tie — plus a satisfied cap.
    fn pinched_dpm(mode: adpm_core::ManagementMode) -> (DesignProcessManager, PropertyId) {
        use adpm_constraint::{expr::{cst, var}, ConstraintNetwork, Property, Relation};
        let mut net = ConstraintNetwork::new();
        let x = net
            .add_property(Property::new("x", "o", Domain::interval(0.0, 10.0)))
            .unwrap();
        net.add_constraint("lo", var(x), Relation::Ge, cst(8.0)).unwrap();
        net.add_constraint("hi", var(x), Relation::Le, cst(9.5)).unwrap();
        let config = match mode {
            adpm_core::ManagementMode::Adpm => adpm_core::DpmConfig::adpm(),
            adpm_core::ManagementMode::Conventional => adpm_core::DpmConfig::conventional(),
        };
        let mut dpm = DesignProcessManager::new(net, config);
        let d = dpm.add_designer();
        let top = dpm.problems_mut().add_root("top");
        *dpm.problems_mut().problem_mut(top) = dpm
            .problems()
            .problem(top)
            .clone()
            .with_outputs([x])
            .with_constraints(dpm.network().constraint_ids().collect::<Vec<_>>())
            .with_assignee(d);
        (dpm, x)
    }

    #[test]
    fn best_scoring_value_lands_in_the_satisfying_window() {
        // x bound at 1.0 violates `lo` (x >= 8); `hi` caps at 9.5. The
        // satisfying window is [8, 9.5]; the scoring scan must land inside.
        let (mut dpm, x) = pinched_dpm(adpm_core::ManagementMode::Adpm);
        let top = dpm.problems().root().unwrap();
        let d = dpm.designers()[0];
        dpm.execute(Operation::assign(d, top, x, Value::number(1.0))).unwrap();
        assert_eq!(dpm.known_violations().len(), 1);
        let designer = SimulatedDesigner::new(d);
        let config = SimulationConfig::adpm(0);
        let violations = dpm.known_violations();
        let value = designer
            .best_scoring_value(&dpm, &config, x, &violations, 1.0, 0, &Domain::interval(0.0, 10.0))
            .expect("an improving value exists");
        assert!((8.0..=9.5).contains(&value), "value = {value}");
    }

    #[test]
    fn best_scoring_value_returns_none_when_no_move_improves() {
        // x = 9.0 satisfies both constraints; there is nothing to gain.
        let (mut dpm, x) = pinched_dpm(adpm_core::ManagementMode::Adpm);
        let top = dpm.problems().root().unwrap();
        let d = dpm.designers()[0];
        dpm.execute(Operation::assign(d, top, x, Value::number(9.0))).unwrap();
        assert!(dpm.known_violations().is_empty());
        let designer = SimulatedDesigner::new(d);
        let config = SimulationConfig::adpm(0);
        assert_eq!(
            designer.best_scoring_value(&dpm, &config, x, &[], 9.0, 0, &Domain::interval(0.0, 10.0)),
            None
        );
    }

    #[test]
    fn checkable_constraints_are_mode_asymmetric() {
        use adpm_constraint::{expr::{cst, var}, ConstraintNetwork, Property, Relation};
        // x belongs to designer 0's problem; `local` is theirs, `cross` is
        // the (unassigned-to-them) parent's and never seen violated.
        let mut net = ConstraintNetwork::new();
        let x = net
            .add_property(Property::new("x", "a", Domain::interval(0.0, 10.0)))
            .unwrap();
        let y = net
            .add_property(Property::new("y", "b", Domain::interval(0.0, 10.0)))
            .unwrap();
        let local = net.add_constraint("local", var(x), Relation::Le, cst(9.0)).unwrap();
        let cross = net.add_constraint("cross", var(x) + var(y), Relation::Le, cst(12.0)).unwrap();
        let build = |mode| {
            let config = match mode {
                adpm_core::ManagementMode::Adpm => adpm_core::DpmConfig::adpm(),
                adpm_core::ManagementMode::Conventional => adpm_core::DpmConfig::conventional(),
            };
            let mut dpm = DesignProcessManager::new(net.clone(), config);
            let d0 = dpm.add_designer();
            let d1 = dpm.add_designer();
            let top = dpm.problems_mut().add_root("top");
            let pa = dpm.problems_mut().decompose(top, "pa");
            let pb = dpm.problems_mut().decompose(top, "pb");
            *dpm.problems_mut().problem_mut(top) =
                dpm.problems().problem(top).clone().with_constraints([cross]);
            *dpm.problems_mut().problem_mut(pa) = dpm
                .problems()
                .problem(pa)
                .clone()
                .with_outputs([x])
                .with_constraints([local])
                .with_assignee(d0);
            *dpm.problems_mut().problem_mut(pb) = dpm
                .problems()
                .problem(pb)
                .clone()
                .with_outputs([y])
                .with_assignee(d1);
            dpm
        };
        let designer = SimulatedDesigner::new(DesignerId::new(0));
        // ADPM: the DCM keeps every constraint's status fresh.
        let adpm = build(adpm_core::ManagementMode::Adpm);
        let checkable =
            designer.checkable_constraints(&adpm, &SimulationConfig::adpm(0), x, &[]);
        assert!(checkable.contains(&local) && checkable.contains(&cross));
        // Conventional: the unseen cross constraint is invisible.
        let conv = build(adpm_core::ManagementMode::Conventional);
        let checkable =
            designer.checkable_constraints(&conv, &SimulationConfig::conventional(0), x, &[]);
        assert!(checkable.contains(&local));
        assert!(!checkable.contains(&cross), "unseen cross constraint leaked");
        // ...until it has been seen violated once.
        let mut aware = SimulatedDesigner::new(DesignerId::new(0));
        aware.seen_violated.insert(cross);
        let checkable =
            aware.checkable_constraints(&conv, &SimulationConfig::conventional(0), x, &[]);
        assert!(checkable.contains(&cross));
    }

    #[test]
    fn context_tabu_releases_when_a_neighbour_moves() {
        let (mut dpm, x) = pinched_dpm(adpm_core::ManagementMode::Adpm);
        let net = dpm.network();
        let ctx1 = SimulatedDesigner::context_hash(net, x);
        let mut designer = SimulatedDesigner::new(dpm.designers()[0]);
        designer.remember_failure(x, 5.0, ctx1);
        assert!(designer.is_tabu(x, 5.0, ctx1));
        // x has no constraint neighbours in this net, so fabricate a
        // different context value directly: the same value in another
        // context is admissible.
        assert!(!designer.is_tabu(x, 5.0, ctx1 ^ 1));
        // And the context hash actually changes when a neighbour binds.
        let top = dpm.problems().root().unwrap();
        let d = dpm.designers()[0];
        dpm.execute(Operation::assign(d, top, x, Value::number(9.0))).unwrap();
        // x's own binding does not affect x's context (neighbours only).
        assert_eq!(SimulatedDesigner::context_hash(dpm.network(), x), ctx1);
    }

    #[test]
    fn forward_ordering_variants_pick_different_targets() {
        use adpm_constraint::{expr::{cst, var}, ConstraintNetwork, Property, Relation};
        use crate::config::ForwardOrdering;
        // `hub` sits in two constraints with a wide feasible range;
        // `narrow` sits in one constraint that pins it tightly.
        let mut net = ConstraintNetwork::new();
        let hub = net
            .add_property(Property::new("hub", "o", Domain::interval(0.0, 10.0)))
            .unwrap();
        let narrow = net
            .add_property(Property::new("narrow", "o", Domain::interval(0.0, 10.0)))
            .unwrap();
        net.add_constraint("h1", var(hub), Relation::Le, cst(9.0)).unwrap();
        net.add_constraint("h2", var(hub), Relation::Ge, cst(1.0)).unwrap();
        net.add_constraint("n1", var(narrow), Relation::Le, cst(0.5)).unwrap();
        let mut dpm = DesignProcessManager::new(net, adpm_core::DpmConfig::adpm());
        let d = dpm.add_designer();
        let top = dpm.problems_mut().add_root("top");
        *dpm.problems_mut().problem_mut(top) = dpm
            .problems()
            .problem(top)
            .clone()
            .with_outputs([hub, narrow])
            .with_assignee(d);
        dpm.initialize();

        let target_under = |ordering: ForwardOrdering| {
            let mut config = SimulationConfig::adpm(1);
            config.choice_noise = 0.0; // deterministic for the test
            config.heuristics.forward_ordering = ordering;
            let mut designer = SimulatedDesigner::new(d);
            let op = designer
                .choose(&dpm, &config, &mut rng())
                .expect("forward work exists");
            op.operator().target_property().expect("assign")
        };
        // Smallest feasible subspace picks the pinned property...
        assert_eq!(target_under(ForwardOrdering::SmallestFeasible), narrow);
        // ...β ordering picks the most-connected one.
        assert_eq!(target_under(ForwardOrdering::Beta), hub);
        assert_eq!(target_under(ForwardOrdering::BetaIndirect), hub);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut items: Vec<u32> = (0..20).collect();
        shuffle(&mut items, &mut rng());
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
