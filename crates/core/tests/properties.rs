//! Property-based tests of the design-process manager's invariants:
//! arbitrary (valid and invalid) operation sequences never panic, history
//! bookkeeping stays consistent, replay is exact, and the termination
//! predicate never lies.

use adpm_constraint::{
    expr::{cst, var},
    ConstraintNetwork, Domain, Property, PropertyId, Relation, Value,
};
use adpm_core::{
    replay_history, DesignProcessManager, DesignerId, DpmConfig, ManagementMode, Operation,
    ProblemId,
};
use proptest::prelude::*;

/// A three-property, two-constraint network with a two-level hierarchy.
fn build_dpm(mode: ManagementMode) -> DesignProcessManager {
    let mut net = ConstraintNetwork::new();
    let x = net
        .add_property(Property::new("x", "a", Domain::interval(0.0, 10.0)))
        .expect("unique");
    let y = net
        .add_property(Property::new("y", "b", Domain::interval(0.0, 10.0)))
        .expect("unique");
    let z = net
        .add_property(Property::new("z", "b", Domain::interval(0.0, 10.0)))
        .expect("unique");
    let c1 = net
        .add_constraint("sum", var(x) + var(y), Relation::Le, cst(12.0))
        .expect("valid");
    let c2 = net
        .add_constraint("ord", var(y), Relation::Le, var(z))
        .expect("valid");
    let config = match mode {
        ManagementMode::Adpm => DpmConfig::adpm(),
        ManagementMode::Conventional => DpmConfig::conventional(),
    };
    let mut dpm = DesignProcessManager::new(net, config);
    let d0 = dpm.add_designer();
    let d1 = dpm.add_designer();
    let top = dpm.problems_mut().add_root("top");
    let pa = dpm.problems_mut().decompose(top, "pa");
    let pb = dpm.problems_mut().decompose(top, "pb");
    *dpm.problems_mut().problem_mut(top) = dpm
        .problems()
        .problem(top)
        .clone()
        .with_constraints([c1])
        .with_assignee(d0);
    *dpm.problems_mut().problem_mut(pa) = dpm
        .problems()
        .problem(pa)
        .clone()
        .with_outputs([x])
        .with_assignee(d0);
    *dpm.problems_mut().problem_mut(pb) = dpm
        .problems()
        .problem(pb)
        .clone()
        .with_outputs([y, z])
        .with_constraints([c2])
        .with_assignee(d1);
    dpm.initialize();
    dpm
}

/// One step of a random operation script.
#[derive(Debug, Clone)]
enum Step {
    Assign(usize, f64),
    Unbind(usize),
    Verify(usize),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..3, -2.0f64..12.0).prop_map(|(p, v)| Step::Assign(p, v)),
        (0usize..3).prop_map(Step::Unbind),
        (0usize..3).prop_map(Step::Verify),
    ]
}

fn apply(dpm: &mut DesignProcessManager, s: &Step) -> bool {
    let problems = [ProblemId::new(0), ProblemId::new(1), ProblemId::new(2)];
    let designer = DesignerId::new(0);
    let result = match s {
        Step::Assign(p, v) => dpm.execute(Operation::assign(
            designer,
            problems[(*p % 2) + 1],
            PropertyId::new(*p as u32),
            Value::number(*v),
        )),
        Step::Unbind(p) => dpm.execute(Operation::unbind(
            designer,
            problems[(*p % 2) + 1],
            PropertyId::new(*p as u32),
        )),
        Step::Verify(p) => dpm.execute(Operation::verify(designer, problems[*p])),
    };
    result.is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No operation sequence (including out-of-range assigns, redundant
    /// unbinds, and pointless verifications) can panic, corrupt the
    /// history, or desynchronize the cumulative counters.
    #[test]
    fn random_scripts_keep_invariants(
        steps in proptest::collection::vec(step(), 0..25),
        adpm in any::<bool>(),
    ) {
        let mode = if adpm { ManagementMode::Adpm } else { ManagementMode::Conventional };
        let mut dpm = build_dpm(mode);
        let initial_evals = dpm.total_evaluations();
        let mut accepted = 0usize;
        for s in &steps {
            if apply(&mut dpm, s) {
                accepted += 1;
            }
        }
        // History records exactly the accepted operations, in order.
        prop_assert_eq!(dpm.history().len(), accepted);
        for (i, record) in dpm.history().iter().enumerate() {
            prop_assert_eq!(record.sequence, i + 1);
        }
        // Counters equal the sums over the history.
        let eval_sum: usize = dpm.history().iter().map(|r| r.evaluations).sum();
        prop_assert_eq!(dpm.total_evaluations(), initial_evals + eval_sum);
        let spin_sum = dpm.history().iter().filter(|r| r.spin).count();
        prop_assert_eq!(dpm.spins(), spin_sum);
    }

    /// The completion predicate never lies: whenever it reports true, every
    /// constraint point-checks against the bound values.
    #[test]
    fn completion_implies_ground_truth(
        steps in proptest::collection::vec(step(), 0..25),
        adpm in any::<bool>(),
    ) {
        let mode = if adpm { ManagementMode::Adpm } else { ManagementMode::Conventional };
        let mut dpm = build_dpm(mode);
        for s in &steps {
            let _ = apply(&mut dpm, s);
            if dpm.design_complete() {
                let net = dpm.network();
                for cid in net.constraint_ids() {
                    prop_assert!(net.all_arguments_bound(cid));
                    prop_assert!(
                        net.check_constraint_point(cid),
                        "complete design violates {}",
                        net.constraint(cid).name()
                    );
                }
            }
        }
    }

    /// Any accepted history replays exactly on a fresh, identically
    /// initialized DPM.
    #[test]
    fn histories_replay_exactly(
        steps in proptest::collection::vec(step(), 0..25),
        adpm in any::<bool>(),
    ) {
        let mode = if adpm { ManagementMode::Adpm } else { ManagementMode::Conventional };
        let mut dpm = build_dpm(mode);
        for s in &steps {
            let _ = apply(&mut dpm, s);
        }
        let mut fresh = build_dpm(mode);
        let outcome = replay_history(dpm.history(), &mut fresh)
            .expect("accepted operations stay valid on replay");
        prop_assert!(outcome.faithful);
        prop_assert_eq!(fresh.design_complete(), dpm.design_complete());
        prop_assert_eq!(fresh.known_violations(), dpm.known_violations());
    }

    /// Feasible subspaces under ADPM are always sound: the bound value of
    /// every property satisfying all constraints point-wise is never pruned
    /// from a *sibling's* feasible subspace... simplified here to: feasible
    /// subspaces never exceed the initial ranges, and bound properties pin
    /// to singletons.
    #[test]
    fn adpm_feasible_subspaces_stay_inside_initial_ranges(
        steps in proptest::collection::vec(step(), 0..25),
    ) {
        let mut dpm = build_dpm(ManagementMode::Adpm);
        for s in &steps {
            let _ = apply(&mut dpm, s);
            let net = dpm.network();
            for pid in net.property_ids() {
                let initial = net.property(pid).initial_domain();
                let feasible = net.feasible(pid);
                prop_assert!(feasible.relative_size(initial) <= 1.0 + 1e-12);
                if let Some(value) = net.assignment(pid) {
                    prop_assert!(
                        feasible.is_empty() || feasible.contains(value),
                        "bound value outside its feasible singleton"
                    );
                }
            }
        }
    }
}
