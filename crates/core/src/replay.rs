//! Design-history replay.
//!
//! The paper's design process history `H_n` records every state/operation
//! pair; because the DPM's transition function `δ` is deterministic, a
//! recorded operation sequence re-executed on an identically initialized
//! DPM reproduces the run exactly. Replay is the workhorse for debugging a
//! simulation tail ("what did the state look like at operation 37?") and
//! for auditing that the history alone determines the outcome.

use crate::dpm::DesignProcessManager;
use crate::operation::{Operation, OperationRecord};
use adpm_constraint::NetworkError;
use adpm_observe::TraceLine;

/// Result of replaying a history on a fresh DPM.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The records produced by the replay, in order.
    pub records: Vec<OperationRecord>,
    /// Whether every replayed record matched the original (same
    /// evaluations, violations, and spin flags).
    pub faithful: bool,
}

/// Re-executes `history` on `dpm` (which must be a freshly built, already
/// [`initialize`](DesignProcessManager::initialize)d DPM of the same
/// scenario and configuration) and reports whether the replay reproduced
/// the recorded outcomes.
///
/// # Errors
///
/// Returns the first [`NetworkError`] hit — which, for a history recorded
/// against the same scenario, indicates the DPM was *not* equivalently
/// initialized.
///
/// # Examples
///
/// ```
/// use adpm_core::{replay_history, DesignProcessManager, DpmConfig, Operation};
/// use adpm_constraint::{ConstraintNetwork, Property, Domain, Relation, Value,
///                       expr::{var, cst}};
/// # fn main() -> Result<(), adpm_constraint::NetworkError> {
/// let mut net = ConstraintNetwork::new();
/// let x = net.add_property(Property::new("x", "o", Domain::interval(0.0, 10.0)))?;
/// net.add_constraint("cap", var(x), Relation::Le, cst(4.0))?;
///
/// let build = |net: &ConstraintNetwork| {
///     let mut dpm = DesignProcessManager::new(net.clone(), DpmConfig::adpm());
///     let d = dpm.add_designer();
///     let top = dpm.problems_mut().add_root("top");
///     *dpm.problems_mut().problem_mut(top) =
///         dpm.problems().problem(top).clone().with_outputs([x]).with_assignee(d);
///     dpm.initialize();
///     dpm
/// };
/// let mut original = build(&net);
/// let d = original.designers()[0];
/// let top = original.problems().root().unwrap();
/// original.execute(Operation::assign(d, top, x, Value::number(3.0)))?;
///
/// let mut fresh = build(&net);
/// let outcome = replay_history(original.history(), &mut fresh)?;
/// assert!(outcome.faithful);
/// assert!(fresh.design_complete());
/// # Ok(())
/// # }
/// ```
pub fn replay_history(
    history: &[OperationRecord],
    dpm: &mut DesignProcessManager,
) -> Result<ReplayOutcome, NetworkError> {
    let mut records = Vec::with_capacity(history.len());
    let mut faithful = true;
    for original in history {
        let operation: Operation = original.operation.clone();
        let record = dpm.execute(operation)?;
        faithful = faithful
            && record.evaluations == original.evaluations
            && record.violations_after == original.violations_after
            && record.new_violations == original.new_violations
            && record.spin == original.spin;
        records.push(record);
    }
    Ok(ReplayOutcome { records, faithful })
}

/// A deterministic 64-bit digest of the *design state*: every property's
/// binding and feasible subspace plus the set of violated constraints and
/// the history length.
///
/// The digest deliberately excludes spin flags and repair attribution —
/// operations submitted over the collaboration wire carry no `repairs`
/// list, so a remote run's spin accounting can differ from an in-process
/// run while the design states are identical. Two runs with equal
/// fingerprints agree on everything a designer can observe: which
/// properties are bound to what, how far every feasible subspace has
/// narrowed, and which constraints are violated.
pub fn state_fingerprint(dpm: &DesignProcessManager) -> u64 {
    // FNV-1a over the state's canonical byte encoding: stable across runs
    // and platforms, no hasher-randomization surprises.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let network = dpm.network();
    // The logical operation count, not the in-memory history length: a DPM
    // restored from a journal snapshot fingerprints identically to the
    // original that executed the full history.
    eat(&(dpm.operations_total() as u64).to_le_bytes());
    for pid in network.property_ids() {
        match network.assignment(pid) {
            None => eat(&[0]),
            Some(adpm_constraint::Value::Number(x)) => {
                eat(&[1]);
                eat(&x.to_bits().to_le_bytes());
            }
            Some(adpm_constraint::Value::Bool(b)) => eat(&[2, u8::from(*b)]),
            Some(adpm_constraint::Value::Text(s)) => {
                eat(&[3]);
                eat(s.as_bytes());
            }
        }
        match network.feasible(pid).enclosing_interval() {
            None => eat(&[4]),
            Some(iv) => {
                eat(&iv.lo().to_bits().to_le_bytes());
                eat(&iv.hi().to_bits().to_le_bytes());
            }
        }
    }
    for cid in network.violated_constraints() {
        eat(&(cid.index() as u64).to_le_bytes());
    }
    hash
}

/// Result of auditing a JSONL trace against a design history.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceAudit {
    /// `"op"` lines found in the trace.
    pub trace_operations: usize,
    /// Operations present in the history.
    pub history_operations: usize,
    /// Sequence numbers whose trace line disagrees with the history record
    /// (kind, evaluations, spin flag, or violation counts), or which appear
    /// in only one of the two.
    pub mismatched: Vec<u64>,
}

impl TraceAudit {
    /// Whether the trace and the history tell the same story.
    pub fn consistent(&self) -> bool {
        self.mismatched.is_empty() && self.trace_operations == self.history_operations
    }
}

/// Cross-checks the `"op"` lines of a parsed JSONL trace (see
/// [`adpm_observe::parse_trace`]) against a design history — the offline
/// half of replay auditing: a trace written by a
/// [`JsonlSink`](adpm_observe::JsonlSink) during a run must agree with the
/// history that run recorded, field for field.
pub fn audit_trace(trace: &[TraceLine], history: &[OperationRecord]) -> TraceAudit {
    let mut audit = TraceAudit {
        history_operations: history.len(),
        ..TraceAudit::default()
    };
    let mut seen = std::collections::BTreeSet::new();
    for line in trace.iter().filter(|l| l.tag() == "op") {
        audit.trace_operations += 1;
        let Some(seq) = line.u64_field("seq") else {
            audit.mismatched.push(0);
            continue;
        };
        seen.insert(seq);
        let Some(record) = history.iter().find(|r| r.sequence as u64 == seq) else {
            audit.mismatched.push(seq);
            continue;
        };
        let matches = line.str_field("kind") == Some(record.operation.operator().kind())
            && line.u64_field("designer")
                == Some(record.operation.designer().index() as u64)
            && line.u64_field("evaluations") == Some(record.evaluations as u64)
            && line.u64_field("violations_after") == Some(record.violations_after as u64)
            && line.u64_field("new_violations") == Some(record.new_violations.len() as u64)
            && line.bool_field("spin") == Some(record.spin);
        if !matches {
            audit.mismatched.push(seq);
        }
    }
    for record in history {
        if !seen.contains(&(record.sequence as u64)) {
            audit.mismatched.push(record.sequence as u64);
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpm::DpmConfig;
    use crate::ids::DesignerId;
    use adpm_constraint::{
        expr::{cst, var},
        ConstraintNetwork, Domain, Property, Relation, Value,
    };

    fn build() -> (ConstraintNetwork, adpm_constraint::PropertyId, adpm_constraint::PropertyId) {
        let mut net = ConstraintNetwork::new();
        let x = net
            .add_property(Property::new("x", "a", Domain::interval(0.0, 10.0)))
            .unwrap();
        let y = net
            .add_property(Property::new("y", "b", Domain::interval(0.0, 10.0)))
            .unwrap();
        net.add_constraint("sum", var(x) + var(y), Relation::Le, cst(12.0))
            .unwrap();
        (net, x, y)
    }

    fn dpm_for(net: &ConstraintNetwork, config: DpmConfig) -> DesignProcessManager {
        let (_, x, y) = build(); // ids are stable across identical builds
        let mut dpm = DesignProcessManager::new(net.clone(), config);
        let d = dpm.add_designer();
        let top = dpm.problems_mut().add_root("top");
        *dpm.problems_mut().problem_mut(top) = dpm
            .problems()
            .problem(top)
            .clone()
            .with_outputs([x, y])
            .with_assignee(d);
        dpm.initialize();
        dpm
    }

    #[test]
    fn replay_reproduces_records_and_final_state() {
        let (net, x, y) = build();
        let mut original = dpm_for(&net, DpmConfig::adpm());
        let d = DesignerId::new(0);
        let top = original.problems().root().unwrap();
        original
            .execute(Operation::assign(d, top, x, Value::number(9.0)))
            .unwrap();
        original
            .execute(Operation::assign(d, top, y, Value::number(5.0)))
            .unwrap(); // violates sum <= 12
        original
            .execute(Operation::assign(d, top, y, Value::number(2.0)))
            .unwrap();
        assert!(original.design_complete());

        let mut fresh = dpm_for(&net, DpmConfig::adpm());
        let outcome = replay_history(original.history(), &mut fresh).unwrap();
        assert!(outcome.faithful);
        assert_eq!(outcome.records.len(), 3);
        assert!(fresh.design_complete());
        assert_eq!(fresh.total_evaluations(), original.total_evaluations());
        assert_eq!(fresh.spins(), original.spins());
    }

    #[test]
    fn replay_on_a_different_configuration_is_unfaithful_not_wrong() {
        let (net, x, y) = build();
        let mut original = dpm_for(&net, DpmConfig::adpm());
        let d = DesignerId::new(0);
        let top = original.problems().root().unwrap();
        original
            .execute(Operation::assign(d, top, x, Value::number(9.0)))
            .unwrap();
        original
            .execute(Operation::assign(d, top, y, Value::number(5.0)))
            .unwrap();

        // Replaying an ADPM history on a conventional DPM executes fine but
        // produces different evaluation counts — reported, not panicking.
        let mut conventional = dpm_for(&net, DpmConfig::conventional());
        let outcome = replay_history(original.history(), &mut conventional).unwrap();
        assert!(!outcome.faithful);
    }

    #[test]
    fn replay_surfaces_invalid_operations_as_errors() {
        let (net, x, _) = build();
        let mut donor = dpm_for(&net, DpmConfig::adpm());
        let d = DesignerId::new(0);
        let top = donor.problems().root().unwrap();
        donor
            .execute(Operation::assign(d, top, x, Value::number(9.0)))
            .unwrap();
        let mut history = donor.history().to_vec();
        // Corrupt the history with an out-of-range value.
        history[0].operation =
            Operation::assign(d, top, x, Value::number(999.0));
        let mut fresh = dpm_for(&net, DpmConfig::adpm());
        assert!(replay_history(&history, &mut fresh).is_err());
    }

    #[test]
    fn empty_history_is_trivially_faithful() {
        let (net, _, _) = build();
        let mut dpm = dpm_for(&net, DpmConfig::adpm());
        let outcome = replay_history(&[], &mut dpm).unwrap();
        assert!(outcome.faithful);
        assert!(outcome.records.is_empty());
    }

    /// End-to-end: run a traced DPM session, parse the JSONL it wrote, and
    /// audit the trace against the history that produced it.
    #[test]
    fn trace_audit_matches_the_history_that_wrote_it() {
        use adpm_observe::{parse_trace, JsonlSink};
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let (net, x, y) = build();
        let mut dpm = dpm_for(&net, DpmConfig::adpm());
        let buf = Buf::default();
        let sink = Arc::new(JsonlSink::new(Box::new(buf.clone())));
        dpm.set_sink(sink.clone());
        let d = DesignerId::new(0);
        let top = dpm.problems().root().unwrap();
        dpm.execute(Operation::assign(d, top, x, Value::number(9.0)))
            .unwrap();
        dpm.execute(Operation::assign(d, top, y, Value::number(5.0)))
            .unwrap(); // violates sum <= 12
        dpm.execute(Operation::assign(d, top, y, Value::number(2.0)))
            .unwrap();
        sink.finish().unwrap();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let trace = parse_trace(&text).unwrap();
        let audit = audit_trace(&trace, dpm.history());
        assert!(audit.consistent(), "audit = {audit:?}");
        assert_eq!(audit.trace_operations, 3);

        // Tampering with the history breaks consistency.
        let mut tampered = dpm.history().to_vec();
        tampered[1].spin = !tampered[1].spin;
        let audit = audit_trace(&trace, &tampered);
        assert!(!audit.consistent());
        assert_eq!(audit.mismatched, vec![2]);

        // A truncated trace is flagged too.
        let audit = audit_trace(&trace[..0], dpm.history());
        assert!(!audit.consistent());
        assert_eq!(audit.mismatched.len(), 3);
    }
}
