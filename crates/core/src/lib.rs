//! # adpm-core
//!
//! The Active Design Process Management (ADPM) model from *Application of
//! Constraint-Based Heuristics in Collaborative Design* (Carballo &
//! Director, DAC 2001) — the paper's primary contribution.
//!
//! A design process here is a state-based system: a hierarchy of
//! [`DesignProblem`]s `(I_i, O_i, T_i)` over a
//! [`ConstraintNetwork`](adpm_constraint::ConstraintNetwork), advanced by
//! [`Operation`]s through the [`DesignProcessManager`]'s next-state function
//! `δ`. The DPM runs in one of two [`ManagementMode`]s (the paper's `λ`
//! flag):
//!
//! * **ADPM** — after every operation the Design Constraint Manager runs
//!   constraint propagation, heuristic support data (`v_F`, `α`, `β`,
//!   repair directions) is mined, and the Notification Manager routes
//!   [`Event`]s to the affected designers;
//! * **Conventional** — no propagation; constraint statuses are learned
//!   only from explicit verification operations, and re-binding a property
//!   invalidates earlier verification results.
//!
//! The per-operation [`OperationRecord`]s capture exactly the metrics the
//! paper's TeamSim reports: constraint evaluations, violations found, and
//! design *spins* (repair operations reacting to cross-subsystem
//! violations).
//!
//! See [`browse`] for textual renderings of the paper's Figs. 2–4 browsers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod browse;
mod dpm;
mod events;
mod ids;
mod operation;
mod problem;
mod replay;

pub use dpm::{DesignProcessManager, DpmConfig, ManagementMode, OperationError};
pub use events::{Event, NegotiationAnswer, Notification, NotificationManager, Proposal};
pub use ids::{DesignerId, ProblemId};
pub use operation::{Operation, OperationRecord, Operator};
pub use problem::{DesignProblem, ProblemSet, ProblemStatus};
pub use replay::{audit_trace, replay_history, state_fingerprint, ReplayOutcome, TraceAudit};
