//! Design problems `p_i = (I_i, O_i, T_i)` and their hierarchy.
//!
//! A problem has input properties, output properties, and a set of
//! constraints over (a subset of) its properties. Decomposition operators
//! split a problem into partially-ordered subproblems; a parent problem is
//! *Waiting* until its children are solved, which is how the paper's `f_p`
//! (problem selection) skips it.

use adpm_constraint::{ConstraintId, PropertyId};
use crate::ids::{DesignerId, ProblemId};
use std::fmt;

/// Level of accomplishment of a design problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemStatus {
    /// The problem can be worked on.
    Open,
    /// The problem waits on its subproblems (skipped by problem selection).
    Waiting,
    /// All outputs are bound and no constraint of the problem is known to
    /// be violated.
    Solved,
}

impl fmt::Display for ProblemStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProblemStatus::Open => "Open",
            ProblemStatus::Waiting => "Waiting",
            ProblemStatus::Solved => "Solved",
        };
        f.write_str(s)
    }
}

/// A design problem `p_i = (I_i, O_i, T_i)`.
///
/// # Examples
///
/// ```
/// use adpm_core::{DesignProblem, ProblemId};
/// use adpm_constraint::PropertyId;
/// let p = DesignProblem::new(ProblemId::new(0), "LNA design")
///     .with_outputs([PropertyId::new(0), PropertyId::new(1)]);
/// assert_eq!(p.outputs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignProblem {
    id: ProblemId,
    name: String,
    inputs: Vec<PropertyId>,
    outputs: Vec<PropertyId>,
    constraints: Vec<ConstraintId>,
    status: ProblemStatus,
    parent: Option<ProblemId>,
    children: Vec<ProblemId>,
    predecessors: Vec<ProblemId>,
    assignee: Option<DesignerId>,
}

impl DesignProblem {
    /// Creates an open, unassigned problem with no properties yet.
    pub fn new(id: ProblemId, name: impl Into<String>) -> Self {
        DesignProblem {
            id,
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            constraints: Vec::new(),
            status: ProblemStatus::Open,
            parent: None,
            children: Vec::new(),
            predecessors: Vec::new(),
            assignee: None,
        }
    }

    /// Sets the input properties `I_i`.
    pub fn with_inputs(mut self, inputs: impl IntoIterator<Item = PropertyId>) -> Self {
        self.inputs = inputs.into_iter().collect();
        self
    }

    /// Sets the output properties `O_i` — the ones a solution must bind.
    pub fn with_outputs(mut self, outputs: impl IntoIterator<Item = PropertyId>) -> Self {
        self.outputs = outputs.into_iter().collect();
        self
    }

    /// Sets the constraint set `T_i`.
    pub fn with_constraints(mut self, constraints: impl IntoIterator<Item = ConstraintId>) -> Self {
        self.constraints = constraints.into_iter().collect();
        self
    }

    /// Declares problems that must be solved before this one can be
    /// addressed — the partial order of the paper's decomposition
    /// operators ("decomposing p_i into a partially-ordered subproblem
    /// set").
    pub fn with_predecessors(
        mut self,
        predecessors: impl IntoIterator<Item = ProblemId>,
    ) -> Self {
        self.predecessors = predecessors.into_iter().collect();
        self
    }

    /// Assigns the problem to a designer.
    pub fn with_assignee(mut self, designer: DesignerId) -> Self {
        self.assignee = Some(designer);
        self
    }

    /// The problem's id.
    pub fn id(&self) -> ProblemId {
        self.id
    }

    /// The problem's name, e.g. `"MEMS filter"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input properties `I_i`.
    pub fn inputs(&self) -> &[PropertyId] {
        &self.inputs
    }

    /// Output properties `O_i`.
    pub fn outputs(&self) -> &[PropertyId] {
        &self.outputs
    }

    /// Constraints `T_i`.
    pub fn constraints(&self) -> &[ConstraintId] {
        &self.constraints
    }

    /// Current status.
    pub fn status(&self) -> ProblemStatus {
        self.status
    }

    /// Sets the status (the DPM updates this after every transition).
    pub fn set_status(&mut self, status: ProblemStatus) {
        self.status = status;
    }

    /// The parent problem in the decomposition hierarchy, if any.
    pub fn parent(&self) -> Option<ProblemId> {
        self.parent
    }

    /// Subproblems created by decomposition, in order.
    pub fn children(&self) -> &[ProblemId] {
        &self.children
    }

    /// Problems that must be solved before this one can be addressed.
    pub fn predecessors(&self) -> &[ProblemId] {
        &self.predecessors
    }

    /// The designer the problem is assigned to, if any.
    pub fn assignee(&self) -> Option<DesignerId> {
        self.assignee
    }

    /// Reassigns the problem.
    pub fn set_assignee(&mut self, designer: Option<DesignerId>) {
        self.assignee = designer;
    }

    pub(crate) fn set_parent(&mut self, parent: ProblemId) {
        self.parent = Some(parent);
    }

    pub(crate) fn add_child(&mut self, child: ProblemId) {
        self.children.push(child);
    }

    /// Attaches a constraint to the problem's set `T_i` (idempotent).
    /// The DPM uses this when new constraints are generated mid-process.
    pub fn add_constraint(&mut self, cid: ConstraintId) {
        if !self.constraints.contains(&cid) {
            self.constraints.push(cid);
        }
    }

    /// Whether `pid` is one of the problem's outputs.
    pub fn has_output(&self, pid: PropertyId) -> bool {
        self.outputs.contains(&pid)
    }

    /// Whether the problem is a leaf (no subproblems).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The set of all design problems currently under design, with their
/// decomposition hierarchy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProblemSet {
    problems: Vec<DesignProblem>,
    root: Option<ProblemId>,
}

impl ProblemSet {
    /// Creates an empty problem set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of problems.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the set holds no problems.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Adds a top-level (root) problem. The first root added becomes *the*
    /// root used for termination checks.
    pub fn add_root(&mut self, name: impl Into<String>) -> ProblemId {
        let id = ProblemId::new(self.problems.len() as u32);
        self.problems.push(DesignProblem::new(id, name));
        if self.root.is_none() {
            self.root = Some(id);
        }
        id
    }

    /// Decomposes `parent` by creating a new subproblem under it.
    /// The parent transitions to [`ProblemStatus::Waiting`].
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the set.
    pub fn decompose(&mut self, parent: ProblemId, name: impl Into<String>) -> ProblemId {
        let id = ProblemId::new(self.problems.len() as u32);
        let mut child = DesignProblem::new(id, name);
        child.set_parent(parent);
        self.problems.push(child);
        let parent_problem = &mut self.problems[parent.index()];
        parent_problem.add_child(id);
        parent_problem.set_status(ProblemStatus::Waiting);
        id
    }

    /// The root (top-level) problem, if any.
    pub fn root(&self) -> Option<ProblemId> {
        self.root
    }

    /// A problem by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn problem(&self, id: ProblemId) -> &DesignProblem {
        &self.problems[id.index()]
    }

    /// Mutable access to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    pub fn problem_mut(&mut self, id: ProblemId) -> &mut DesignProblem {
        &mut self.problems[id.index()]
    }

    /// Iterates over all problem ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = ProblemId> + '_ {
        (0..self.problems.len() as u32).map(ProblemId::new)
    }

    /// All problems assigned to `designer`.
    pub fn assigned_to(&self, designer: DesignerId) -> Vec<ProblemId> {
        self.problems
            .iter()
            .filter(|p| p.assignee() == Some(designer))
            .map(|p| p.id())
            .collect()
    }

    /// Leaf problems (the ones designers actually work on).
    pub fn leaves(&self) -> Vec<ProblemId> {
        self.problems
            .iter()
            .filter(|p| p.is_leaf())
            .map(|p| p.id())
            .collect()
    }

    /// Whether every problem is solved.
    pub fn all_solved(&self) -> bool {
        self.problems
            .iter()
            .all(|p| p.status() == ProblemStatus::Solved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let p = DesignProblem::new(ProblemId::new(0), "top")
            .with_inputs([PropertyId::new(0)])
            .with_outputs([PropertyId::new(1), PropertyId::new(2)])
            .with_constraints([ConstraintId::new(0)])
            .with_assignee(DesignerId::new(1));
        assert_eq!(p.name(), "top");
        assert_eq!(p.inputs(), &[PropertyId::new(0)]);
        assert_eq!(p.outputs().len(), 2);
        assert!(p.has_output(PropertyId::new(1)));
        assert!(!p.has_output(PropertyId::new(0)));
        assert_eq!(p.constraints(), &[ConstraintId::new(0)]);
        assert_eq!(p.assignee(), Some(DesignerId::new(1)));
        assert_eq!(p.status(), ProblemStatus::Open);
    }

    #[test]
    fn decomposition_builds_hierarchy_and_sets_waiting() {
        let mut set = ProblemSet::new();
        let top = set.add_root("system");
        let analog = set.decompose(top, "analog");
        let filter = set.decompose(top, "filter");
        assert_eq!(set.root(), Some(top));
        assert_eq!(set.problem(top).children(), &[analog, filter]);
        assert_eq!(set.problem(analog).parent(), Some(top));
        assert_eq!(set.problem(top).status(), ProblemStatus::Waiting);
        assert!(set.problem(analog).is_leaf());
        assert!(!set.problem(top).is_leaf());
        assert_eq!(set.leaves(), vec![analog, filter]);
    }

    #[test]
    fn assignment_queries() {
        let mut set = ProblemSet::new();
        let top = set.add_root("system");
        let analog = set.decompose(top, "analog");
        let filter = set.decompose(top, "filter");
        set.problem_mut(analog)
            .set_assignee(Some(DesignerId::new(0)));
        set.problem_mut(filter)
            .set_assignee(Some(DesignerId::new(1)));
        assert_eq!(set.assigned_to(DesignerId::new(0)), vec![analog]);
        assert_eq!(set.assigned_to(DesignerId::new(1)), vec![filter]);
        assert!(set.assigned_to(DesignerId::new(2)).is_empty());
    }

    #[test]
    fn predecessors_round_trip() {
        let p = DesignProblem::new(ProblemId::new(2), "b")
            .with_predecessors([ProblemId::new(1)]);
        assert_eq!(p.predecessors(), &[ProblemId::new(1)]);
    }

    #[test]
    fn all_solved_requires_every_problem() {
        let mut set = ProblemSet::new();
        let top = set.add_root("system");
        let child = set.decompose(top, "child");
        assert!(!set.all_solved());
        set.problem_mut(child).set_status(ProblemStatus::Solved);
        assert!(!set.all_solved());
        set.problem_mut(top).set_status(ProblemStatus::Solved);
        assert!(set.all_solved());
    }

    #[test]
    fn add_constraint_is_idempotent() {
        let mut p = DesignProblem::new(ProblemId::new(0), "p");
        p.add_constraint(ConstraintId::new(0));
        p.add_constraint(ConstraintId::new(0));
        assert_eq!(p.constraints().len(), 1);
    }

    #[test]
    fn status_display() {
        assert_eq!(ProblemStatus::Open.to_string(), "Open");
        assert_eq!(ProblemStatus::Waiting.to_string(), "Waiting");
        assert_eq!(ProblemStatus::Solved.to_string(), "Solved");
    }
}
