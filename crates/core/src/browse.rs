//! Textual renderings of Minerva III's browsers (paper Figs. 2–4).
//!
//! The paper's screenshots are information displays over the constraint
//! state: the *object browser* (Fig. 2) lists each property's values not
//! found to be infeasible; the *constraint and property browser*
//! (Figs. 3–4) lists constraint statuses and, per property, the number of
//! connected constraints (`# c's`), the current value, and the number of
//! connected violations. These functions reproduce those views as plain
//! text so examples and logs can show exactly what a designer would see.

use adpm_constraint::{explain_violation, ConstraintNetwork, HeuristicReport, PropertyId};

/// Renders the object browser view (Fig. 2) for one design object:
/// each property with its abstraction levels and the value set not found to
/// be infeasible.
///
/// # Examples
///
/// ```
/// use adpm_constraint::{ConstraintNetwork, Property, Domain};
/// use adpm_core::browse::object_browser;
/// # fn main() -> Result<(), adpm_constraint::NetworkError> {
/// let mut net = ConstraintNetwork::new();
/// net.add_property(Property::new("Freq-ind", "LNA+Mixer", Domain::interval(0.0, 0.5)))?;
/// let view = object_browser(&net, "LNA+Mixer");
/// assert!(view.contains("Freq-ind"));
/// # Ok(())
/// # }
/// ```
pub fn object_browser(network: &ConstraintNetwork, object: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("Object name: {object}\n"));
    for pid in network.property_ids() {
        let meta = network.property(pid);
        if meta.object() != object {
            continue;
        }
        let levels = if meta.abstraction_levels().is_empty() {
            String::new()
        } else {
            format!(
                "  Abstraction Levels: {}",
                meta.abstraction_levels().join(",")
            )
        };
        out.push_str(&format!("{:<14}{levels}\n", meta.name()));
        let feasible = network.feasible(pid);
        if let Some(value) = network.assignment(pid) {
            out.push_str(&format!("              Assigned value: {value}\n"));
        } else {
            out.push_str(&format!("              Consistent values: {feasible}\n"));
        }
    }
    out
}

/// Renders the CONSTRAINTS pane of the constraint & property browser
/// (Figs. 3–4): each constraint with its current status.
pub fn constraint_pane(network: &ConstraintNetwork) -> String {
    let mut out = String::from("CONSTRAINTS\n");
    for cid in network.constraint_ids() {
        let c = network.constraint(cid);
        out.push_str(&format!(
            "{:<24}{}\n",
            format!("{}-{}", c.name(), cid),
            network.status(cid)
        ));
    }
    out
}

/// Renders the PROPERTIES pane of the constraint & property browser
/// (Figs. 3–4): per property, the number of connected constraints
/// (`# c's` — the paper's `β`), the value or status, the owning object,
/// and the number of connected violations (the paper's `α`).
pub fn property_pane(network: &ConstraintNetwork, report: &HeuristicReport) -> String {
    let mut out = String::from("PROPERTIES\n");
    out.push_str(&format!(
        "{:<22}{:>6}  {:<26}{:<12}{}\n",
        "Property/Constraint", "# c's", "Value/Status", "Object", "Connected violations"
    ));
    for pid in network.property_ids() {
        let meta = network.property(pid);
        let insight = report.insight(pid);
        let value = match network.assignment(pid) {
            Some(v) => v.to_string(),
            None => "<No value assigned>".to_owned(),
        };
        let alpha = if insight.alpha > 0 {
            insight.alpha.to_string()
        } else {
            String::new()
        };
        out.push_str(&format!(
            "P.{:<20}{:>6}  {:<26}{:<12}{}\n",
            format!("{}{}", meta.name(), pid.index()),
            insight.beta,
            value,
            meta.object(),
            alpha
        ));
    }
    out
}

/// Renders a conflict-resolution summary (Fig. 4): the violated
/// constraints and, for each property connected to violations, the repair
/// guidance mined by the heuristics.
pub fn conflict_view(network: &ConstraintNetwork, report: &HeuristicReport) -> String {
    let mut out = String::from("CONFLICTS\n");
    for cid in network.violated_constraints() {
        let c = network.constraint(cid);
        out.push_str(&format!("{:<24}Violated\n", format!("{}-{}", c.name(), cid)));
        // Fig. 4 also shows the values each property would need
        // ("[48.000000 48.000000] required by LNAGain-C10").
        if let Some(explanation) = explain_violation(network, cid) {
            for arg in &explanation.arguments {
                if !arg.required.is_empty() {
                    out.push_str(&format!(
                        "  {:<20} {} required by {}-{}\n",
                        arg.name,
                        arg.required,
                        c.name(),
                        cid
                    ));
                }
            }
        }
    }
    for pid in report.conflicted_properties() {
        let meta = network.property(pid);
        let insight = report.insight(pid);
        let guidance = match insight.repair_direction {
            Some(dir) => format!("try {dir} its value"),
            None => "no single direction helps all violations".to_owned(),
        };
        out.push_str(&format!(
            "P.{:<20}connected violations: {}  ({guidance})\n",
            meta.name(),
            insight.alpha
        ));
    }
    out
}

/// Lists the ids of the properties of one design object (helper for
/// examples that want to iterate a browser's rows programmatically).
pub fn object_properties(network: &ConstraintNetwork, object: &str) -> Vec<PropertyId> {
    network
        .property_ids()
        .filter(|pid| network.property(*pid).object() == object)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{
        expr::{cst, var},
        Domain, Property, Relation, Value,
    };

    fn lna_net() -> ConstraintNetwork {
        let mut net = ConstraintNetwork::new();
        let w = net
            .add_property(
                Property::new("Diff-pair-W", "LNA+Mixer", Domain::interval(0.5, 10.0))
                    .with_abstraction_levels(["Transistor", "Geometry"]),
            )
            .unwrap();
        let ind = net
            .add_property(Property::new("Freq-ind", "LNA+Mixer", Domain::interval(0.0, 0.5)))
            .unwrap();
        net.add_constraint("LNAPower", var(w) * cst(10.0), Relation::Le, cst(200.0))
            .unwrap();
        net.add_constraint("LNAGain", var(w) * cst(16.0), Relation::Ge, cst(48.0))
            .unwrap();
        net.add_constraint("FreqSel", var(ind), Relation::Ge, cst(0.17))
            .unwrap();
        net.evaluate_statuses();
        net
    }

    #[test]
    fn object_browser_lists_properties_with_feasible_sets() {
        let net = lna_net();
        let view = object_browser(&net, "LNA+Mixer");
        assert!(view.contains("Object name: LNA+Mixer"));
        assert!(view.contains("Diff-pair-W"));
        assert!(view.contains("Abstraction Levels: Transistor,Geometry"));
        assert!(view.contains("Consistent values:"));
    }

    #[test]
    fn object_browser_shows_assigned_values() {
        let mut net = lna_net();
        let w = net.property_by_name("LNA+Mixer", "Diff-pair-W").unwrap();
        net.bind(w, Value::number(2.5)).unwrap();
        let view = object_browser(&net, "LNA+Mixer");
        assert!(view.contains("Assigned value: 2.5"));
    }

    #[test]
    fn object_browser_filters_by_object() {
        let mut net = lna_net();
        net.add_property(Property::new("beam-len", "Filter", Domain::interval(5.0, 20.0)))
            .unwrap();
        let view = object_browser(&net, "LNA+Mixer");
        assert!(!view.contains("beam-len"));
    }

    #[test]
    fn constraint_pane_shows_statuses() {
        let net = lna_net();
        let pane = constraint_pane(&net);
        assert!(pane.contains("LNAPower-c0"));
        assert!(pane.contains("Consistent") || pane.contains("Satisfied"));
    }

    #[test]
    fn property_pane_shows_beta_and_alpha() {
        let mut net = lna_net();
        let w = net.property_by_name("LNA+Mixer", "Diff-pair-W").unwrap();
        net.bind(w, Value::number(1.0)).unwrap(); // violates the gain floor
        net.evaluate_statuses();
        let report = HeuristicReport::mine(&net);
        let pane = property_pane(&net, &report);
        assert!(pane.contains("# c's"));
        assert!(pane.contains("Connected violations"));
        // Diff-pair-W has beta = 2 and one violation after the bad sizing.
        let row = pane
            .lines()
            .find(|l| l.contains("Diff-pair-W"))
            .expect("row exists");
        assert!(row.contains('2'), "row: {row}");
        assert!(row.trim_end().ends_with('1'), "row: {row}");
    }

    #[test]
    fn conflict_view_offers_direction_guidance() {
        let mut net = lna_net();
        let w = net.property_by_name("LNA+Mixer", "Diff-pair-W").unwrap();
        net.bind(w, Value::number(1.0)).unwrap();
        net.evaluate_statuses();
        let report = HeuristicReport::mine(&net);
        let view = conflict_view(&net, &report);
        assert!(view.contains("Violated"));
        assert!(view.contains("increasing"), "view: {view}");
    }

    #[test]
    fn object_properties_helper() {
        let net = lna_net();
        assert_eq!(object_properties(&net, "LNA+Mixer").len(), 2);
        assert!(object_properties(&net, "nonexistent").is_empty());
    }
}
