//! Design operations `θ = (operator, problem, parameters)`.
//!
//! The paper distinguishes synthesis/optimization operators (compute output
//! values), verification operators (check constraints), and decomposition
//! operators (split a problem). Operations additionally carry the designer
//! who requested them — the Notification Manager routes feedback by
//! designer — and, for value changes, the violations that motivated them
//! (used for spin accounting).

use crate::ids::{DesignerId, ProblemId};
use adpm_constraint::{ConstraintId, PropertyId, Relaxation, Value};
use std::fmt;

/// The operator applied by a design operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Synthesis: bind an output property of the problem to a value.
    /// In practice this stands for invoking a synthesis/editing tool and
    /// committing its result.
    Assign {
        /// The output property being bound.
        property: PropertyId,
        /// The chosen value.
        value: Value,
    },
    /// Backtracking: remove an output property's value.
    Unbind {
        /// The output property being unbound.
        property: PropertyId,
    },
    /// Verification: run checks for the given constraints (a "tool run"
    /// per constraint). An empty list means "verify all constraints of the
    /// problem whose inputs are bound".
    Verify {
        /// Constraints to check; empty means all ready constraints of the
        /// problem.
        constraints: Vec<ConstraintId>,
    },
    /// Decomposition: split the problem into named subproblems.
    Decompose {
        /// Names of the subproblems to create, in order.
        subproblems: Vec<String>,
    },
    /// Negotiated relaxation: rewrite a constraint (widen its bound or drop
    /// a soft one) as agreed by a negotiation round. Journaled and replayed
    /// like any other operation.
    Relax {
        /// The constraint being relaxed.
        constraint: ConstraintId,
        /// The agreed rewrite.
        relaxation: Relaxation,
    },
}

impl Operator {
    /// Short operator kind name for logs and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Operator::Assign { .. } => "assign",
            Operator::Unbind { .. } => "unbind",
            Operator::Verify { .. } => "verify",
            Operator::Decompose { .. } => "decompose",
            Operator::Relax { .. } => "relax",
        }
    }

    /// The property the operator targets, for value-changing operators.
    pub fn target_property(&self) -> Option<PropertyId> {
        match self {
            Operator::Assign { property, .. } | Operator::Unbind { property } => Some(*property),
            _ => None,
        }
    }
}

/// A design operation: an operator applied to a problem by a designer.
///
/// # Examples
///
/// ```
/// use adpm_core::{Operation, Operator, ProblemId, DesignerId};
/// use adpm_constraint::{PropertyId, Value};
/// let op = Operation::assign(
///     DesignerId::new(0),
///     ProblemId::new(1),
///     PropertyId::new(3),
///     Value::number(0.2),
/// );
/// assert_eq!(op.operator().kind(), "assign");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    designer: DesignerId,
    problem: ProblemId,
    operator: Operator,
    /// Violations the designer is reacting to with this operation (empty
    /// for forward design work). The DPM uses this plus its own status
    /// knowledge for spin accounting.
    repairs: Vec<ConstraintId>,
}

impl Operation {
    /// Creates an operation from its parts.
    pub fn new(designer: DesignerId, problem: ProblemId, operator: Operator) -> Self {
        Operation {
            designer,
            problem,
            operator,
            repairs: Vec::new(),
        }
    }

    /// Convenience constructor for an assignment operation.
    pub fn assign(
        designer: DesignerId,
        problem: ProblemId,
        property: PropertyId,
        value: Value,
    ) -> Self {
        Operation::new(designer, problem, Operator::Assign { property, value })
    }

    /// Convenience constructor for an unbind (backtrack) operation.
    pub fn unbind(designer: DesignerId, problem: ProblemId, property: PropertyId) -> Self {
        Operation::new(designer, problem, Operator::Unbind { property })
    }

    /// Convenience constructor for a verification request.
    pub fn verify(designer: DesignerId, problem: ProblemId) -> Self {
        Operation::new(
            designer,
            problem,
            Operator::Verify {
                constraints: Vec::new(),
            },
        )
    }

    /// Convenience constructor for a negotiated constraint relaxation.
    pub fn relax(
        designer: DesignerId,
        problem: ProblemId,
        constraint: ConstraintId,
        relaxation: Relaxation,
    ) -> Self {
        Operation::new(
            designer,
            problem,
            Operator::Relax {
                constraint,
                relaxation,
            },
        )
    }

    /// Convenience constructor for a decomposition.
    pub fn decompose<S: Into<String>>(
        designer: DesignerId,
        problem: ProblemId,
        subproblems: impl IntoIterator<Item = S>,
    ) -> Self {
        Operation::new(
            designer,
            problem,
            Operator::Decompose {
                subproblems: subproblems.into_iter().map(Into::into).collect(),
            },
        )
    }

    /// Marks the violations this operation reacts to (repair work).
    pub fn with_repairs(mut self, repairs: impl IntoIterator<Item = ConstraintId>) -> Self {
        self.repairs = repairs.into_iter().collect();
        self
    }

    /// The requesting designer.
    pub fn designer(&self) -> DesignerId {
        self.designer
    }

    /// The problem the operation addresses.
    pub fn problem(&self) -> ProblemId {
        self.problem
    }

    /// The operator and its parameters.
    pub fn operator(&self) -> &Operator {
        &self.operator
    }

    /// Violations that motivated the operation (empty for forward work).
    pub fn repairs(&self) -> &[ConstraintId] {
        &self.repairs
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.operator {
            Operator::Assign { property, value } => {
                write!(
                    f,
                    "{}: assign {property} = {value} on {}",
                    self.designer, self.problem
                )
            }
            Operator::Unbind { property } => {
                write!(f, "{}: unbind {property} on {}", self.designer, self.problem)
            }
            Operator::Verify { constraints } => {
                if constraints.is_empty() {
                    write!(f, "{}: verify {}", self.designer, self.problem)
                } else {
                    write!(
                        f,
                        "{}: verify {} constraints on {}",
                        self.designer,
                        constraints.len(),
                        self.problem
                    )
                }
            }
            Operator::Decompose { subproblems } => write!(
                f,
                "{}: decompose {} into {} subproblems",
                self.designer,
                self.problem,
                subproblems.len()
            ),
            Operator::Relax {
                constraint,
                relaxation,
            } => write!(
                f,
                "{}: relax {constraint} ({relaxation}) on {}",
                self.designer, self.problem
            ),
        }
    }
}

/// What a single executed operation did to the design state — one entry of
/// the design process history `H_n`, and the row TeamSim captures per
/// operation (violations found, evaluations run, assignments made).
#[derive(Debug, Clone, PartialEq)]
pub struct OperationRecord {
    /// 1-based index of the operation in the history.
    pub sequence: usize,
    /// The executed operation.
    pub operation: Operation,
    /// Constraint evaluations performed because of this operation
    /// (propagation revisions in ADPM, verification runs conventionally).
    pub evaluations: usize,
    /// Violations known immediately after the operation.
    pub violations_after: usize,
    /// Violations newly discovered by this operation.
    pub new_violations: Vec<ConstraintId>,
    /// Whether this operation was a *design spin*: repair work caused by a
    /// violation spanning multiple subsystems.
    pub spin: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_operators() {
        let d = DesignerId::new(0);
        let p = ProblemId::new(0);
        assert_eq!(
            Operation::assign(d, p, PropertyId::new(1), Value::number(1.0))
                .operator()
                .kind(),
            "assign"
        );
        assert_eq!(Operation::unbind(d, p, PropertyId::new(1)).operator().kind(), "unbind");
        assert_eq!(Operation::verify(d, p).operator().kind(), "verify");
        assert_eq!(
            Operation::decompose(d, p, ["a", "b"]).operator().kind(),
            "decompose"
        );
    }

    #[test]
    fn target_property_only_for_value_ops() {
        let d = DesignerId::new(0);
        let p = ProblemId::new(0);
        let prop = PropertyId::new(7);
        assert_eq!(
            Operation::assign(d, p, prop, Value::number(0.0))
                .operator()
                .target_property(),
            Some(prop)
        );
        assert_eq!(
            Operation::unbind(d, p, prop).operator().target_property(),
            Some(prop)
        );
        assert_eq!(Operation::verify(d, p).operator().target_property(), None);
    }

    #[test]
    fn repairs_round_trip() {
        let op = Operation::verify(DesignerId::new(0), ProblemId::new(0))
            .with_repairs([ConstraintId::new(3)]);
        assert_eq!(op.repairs(), &[ConstraintId::new(3)]);
    }

    #[test]
    fn display_mentions_actor_and_kind() {
        let op = Operation::assign(
            DesignerId::new(1),
            ProblemId::new(2),
            PropertyId::new(3),
            Value::number(0.2),
        );
        let s = op.to_string();
        assert!(s.contains("designer1"));
        assert!(s.contains("assign"));
        assert!(s.contains("prob2"));
    }
}
