//! The Design Process Manager and ADPM's transition model (paper Fig. 1).
//!
//! [`DesignProcessManager::execute`] implements the next-state function
//! `s_{n+1} = δ(s_n, θ_n)`:
//!
//! 1. the requested operator is applied to its problem;
//! 2. **ADPM mode** (`λ = T`): the Design Constraint Manager runs constraint
//!    propagation, feasible subspaces and statuses are refreshed, the
//!    heuristic support data of §2.3 is mined, and the Notification Manager
//!    routes violation/feasibility events to the affected designers;
//! 3. **conventional mode** (`λ = F`): no propagation — constraint statuses
//!    change only through explicit verification operations, and changing a
//!    value invalidates earlier verification results for the constraints it
//!    touches (they fall back to *Consistent*, i.e. unknown);
//! 4. problem statuses are recomputed bottom-up and the operation is
//!    recorded in the design history together with its evaluation count,
//!    violation delta, and spin flag.
//!
//! A **design spin** is an executed operation that reacts to at least one
//! violation involving properties from multiple subsystems — the costly
//! "integration iteration" the paper's evaluation counts.

use crate::events::{Event, Notification, NotificationManager};
use crate::ids::{DesignerId, ProblemId};
use crate::operation::{Operation, OperationRecord, Operator};
use crate::problem::{ProblemSet, ProblemStatus};
use adpm_constraint::{
    propagate_incremental_profiled, propagate_profiled, ConstraintId, ConstraintNetwork,
    ConstraintStatus, HeuristicReport, NetworkError, PropagationConfig, PropagationKind,
    PropertyId,
};
use adpm_observe::{Clock, Counter, MetricsSink, MonotonicClock, NoopSink, SpanKind, TraceEvent};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Why an [`Operation`] failed structural validation before execution.
///
/// [`DesignProcessManager::execute`] applies operators by id and its id
/// lookups (`network.bind`, `problems.problem`, ...) index directly into
/// the underlying vectors — fine for the in-process loop where every id
/// comes from the DPM itself, but panic-prone once operations arrive from
/// another thread or from the wire. [`DesignProcessManager::validate_operation`]
/// checks all referenced ids first and reports the failure as one of these
/// variants, so a session can reject a malformed operation as data instead
/// of poisoning the engine thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationError {
    /// The requesting designer was never registered with this DPM.
    UnknownDesigner(DesignerId),
    /// The operation's problem id is outside the problem hierarchy.
    UnknownProblem(ProblemId),
    /// An assign/unbind target property is outside the network.
    UnknownProperty(PropertyId),
    /// A verify operator names a constraint outside the network.
    UnknownConstraint(ConstraintId),
}

impl std::fmt::Display for OperationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OperationError::UnknownDesigner(d) => write!(f, "unknown designer {d}"),
            OperationError::UnknownProblem(p) => write!(f, "unknown problem id {p}"),
            OperationError::UnknownProperty(p) => write!(f, "unknown property id {p}"),
            OperationError::UnknownConstraint(c) => write!(f, "unknown constraint id {c}"),
        }
    }
}

impl std::error::Error for OperationError {}

/// The paper's `λ` flag: which transition model the DPM uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagementMode {
    /// Conventional flow: statuses known only through verification runs.
    Conventional,
    /// Active Design Process Management: DCM propagation + NM after every
    /// operation.
    Adpm,
}

impl ManagementMode {
    /// Whether this is [`ManagementMode::Adpm`].
    pub fn is_adpm(self) -> bool {
        self == ManagementMode::Adpm
    }

    /// Stable lowercase name, used as the `mode` field of trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            ManagementMode::Adpm => "adpm",
            ManagementMode::Conventional => "conventional",
        }
    }
}

/// Configuration of the design process manager.
#[derive(Debug, Clone, PartialEq)]
pub struct DpmConfig {
    /// Transition model selector (`λ`).
    pub mode: ManagementMode,
    /// Propagation settings used in ADPM mode, including the revision
    /// engine ([`PropagationConfig::engine`]): the AST interpreter (the
    /// default), the compiled flat-program engine, or the compiled engine
    /// parallelized across connected components. All engines reach the
    /// same fixed points; only the wall-clock differs.
    pub propagation: PropagationConfig,
    /// Which DCM propagation path runs after each ADPM operation:
    /// from-scratch [`PropagationKind::Full`] (the default) or dirty-set
    /// [`PropagationKind::Incremental`] seeded with the operation's target
    /// property. Both reach the same fixed point; incremental costs fewer
    /// constraint evaluations per operation.
    pub propagation_kind: PropagationKind,
}

impl DpmConfig {
    /// ADPM-mode configuration with default propagation settings.
    pub fn adpm() -> Self {
        DpmConfig {
            mode: ManagementMode::Adpm,
            propagation: PropagationConfig::default(),
            propagation_kind: PropagationKind::Full,
        }
    }

    /// ADPM-mode configuration using incremental (dirty-set) propagation.
    pub fn adpm_incremental() -> Self {
        DpmConfig {
            propagation_kind: PropagationKind::Incremental,
            ..DpmConfig::adpm()
        }
    }

    /// Conventional-mode configuration.
    pub fn conventional() -> Self {
        DpmConfig {
            mode: ManagementMode::Conventional,
            propagation: PropagationConfig::default(),
            propagation_kind: PropagationKind::Full,
        }
    }
}

/// The design process manager: owns the design state (problem hierarchy +
/// constraint network), executes operations, and maintains the history.
///
/// # Examples
///
/// ```
/// use adpm_core::{DesignProcessManager, DpmConfig, Operation, DesignerId};
/// use adpm_constraint::{ConstraintNetwork, Property, Domain, Relation, Value,
///                       expr::{var, cst}};
/// # fn main() -> Result<(), adpm_constraint::NetworkError> {
/// let mut net = ConstraintNetwork::new();
/// let x = net.add_property(Property::new("x", "o", Domain::interval(0.0, 10.0)))?;
/// net.add_constraint("cap", var(x), Relation::Le, cst(4.0))?;
///
/// let mut dpm = DesignProcessManager::new(net, DpmConfig::adpm());
/// let d = dpm.add_designer();
/// let top = dpm.problems_mut().add_root("top");
/// *dpm.problems_mut().problem_mut(top) = dpm.problems().problem(top)
///     .clone().with_outputs([x]).with_assignee(d);
///
/// let record = dpm.execute(Operation::assign(d, top, x, Value::number(3.0)))?;
/// assert_eq!(record.violations_after, 0);
/// assert!(dpm.design_complete());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignProcessManager {
    network: ConstraintNetwork,
    problems: ProblemSet,
    config: DpmConfig,
    nm: NotificationManager,
    designers: Vec<DesignerId>,
    history: Vec<OperationRecord>,
    /// Operations executed before `history` began (non-zero only after a
    /// snapshot restore): `op_base + history.len()` is the logical
    /// operation count the sequence numbers continue from.
    op_base: usize,
    /// Minimal replayable program reproducing the current design state:
    /// the latest assign per bound property, the surviving verification
    /// per target, and every decompose/relax, in chronological order.
    state_program: Vec<Operation>,
    heuristics: Option<HeuristicReport>,
    pending: HashMap<DesignerId, Vec<Event>>,
    known_violations: BTreeSet<ConstraintId>,
    prev_snapshot: BTreeSet<ConstraintId>,
    event_buffer: Vec<Event>,
    total_evaluations: usize,
    spins: usize,
    sink: Arc<dyn MetricsSink>,
    clock: Arc<dyn Clock>,
}

impl DesignProcessManager {
    /// Creates a DPM over an initial constraint network.
    pub fn new(network: ConstraintNetwork, config: DpmConfig) -> Self {
        DesignProcessManager {
            network,
            problems: ProblemSet::new(),
            config,
            nm: NotificationManager::new(),
            designers: Vec::new(),
            history: Vec::new(),
            op_base: 0,
            state_program: Vec::new(),
            heuristics: None,
            pending: HashMap::new(),
            known_violations: BTreeSet::new(),
            prev_snapshot: BTreeSet::new(),
            event_buffer: Vec::new(),
            total_evaluations: 0,
            spins: 0,
            sink: Arc::new(NoopSink),
            clock: Arc::new(MonotonicClock),
        }
    }

    /// Routes all further instrumentation (operation spans, propagation
    /// waves, counters) to `sink`. Install the sink *before*
    /// [`initialize`](Self::initialize) so the setup propagation is traced
    /// too. The default is a [`NoopSink`].
    pub fn set_sink(&mut self, sink: Arc<dyn MetricsSink>) {
        self.sink = sink;
    }

    /// The metrics sink instrumented paths report to.
    pub fn metrics_sink(&self) -> &Arc<dyn MetricsSink> {
        &self.sink
    }

    /// Replaces the clock instrumented spans are timed against. The default
    /// [`MonotonicClock`] reports wall-clock durations; inject a
    /// [`ManualClock`](adpm_observe::ManualClock) to make traced `dur_us`
    /// fields a deterministic function of the execution path (golden
    /// traces). The clock is only read when the sink is enabled.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Registers a new designer and returns their id.
    pub fn add_designer(&mut self) -> DesignerId {
        let id = DesignerId::new(self.designers.len() as u32);
        self.designers.push(id);
        id
    }

    /// All registered designers.
    pub fn designers(&self) -> &[DesignerId] {
        &self.designers
    }

    /// The management mode (`λ`).
    pub fn mode(&self) -> ManagementMode {
        self.config.mode
    }

    /// The constraint network (current design state).
    pub fn network(&self) -> &ConstraintNetwork {
        &self.network
    }

    /// The problem hierarchy.
    pub fn problems(&self) -> &ProblemSet {
        &self.problems
    }

    /// Mutable access to the problem hierarchy (scenario setup).
    pub fn problems_mut(&mut self) -> &mut ProblemSet {
        &mut self.problems
    }

    /// The heuristic support data mined after the last ADPM transition.
    /// `None` in conventional mode — that is precisely the information
    /// conventional designers do not get.
    pub fn heuristics(&self) -> Option<&HeuristicReport> {
        self.heuristics.as_ref()
    }

    /// The design history so far (one record per executed operation).
    pub fn history(&self) -> &[OperationRecord] {
        &self.history
    }

    /// Total operations executed over the design's lifetime, snapshot
    /// restores included: `op_base + history.len()`. Equals
    /// `history().len()` unless the DPM was restored from a journal
    /// snapshot.
    pub fn operations_total(&self) -> usize {
        self.op_base + self.history.len()
    }

    /// Operations executed before the in-memory history began (non-zero
    /// only after a snapshot restore).
    pub fn op_base(&self) -> usize {
        self.op_base
    }

    /// The minimal replayable state program: executing these operations,
    /// in order, on a freshly initialized twin of this DPM reproduces the
    /// current bindings, feasible subspaces, problem tree, and conflict
    /// ledger. Assigns are deduplicated to the latest per property,
    /// unbinds cancel their assigns outright, and verifications keep only
    /// the most recent run per (problem, constraint-list) target — so the
    /// program length is bounded by the live state, not the history.
    pub fn state_program(&self) -> &[Operation] {
        &self.state_program
    }

    /// Rebases the history after a snapshot restore: the `base` operations
    /// summarized by the snapshot's state program stop counting as
    /// in-memory history and become the logical prefix, so sequence
    /// numbers (and the state fingerprint) continue where the snapshot
    /// left off. Pending notifications and buffered events are cleared —
    /// a restore is silent — while the state program survives, having
    /// just been rebuilt by the restore replay itself.
    pub fn begin_restored_history(&mut self, base: usize) {
        self.op_base = base;
        self.history.clear();
        self.pending.clear();
        self.event_buffer.clear();
        self.prev_snapshot = self.known_violations.clone();
    }

    /// Total constraint evaluations across the whole history.
    pub fn total_evaluations(&self) -> usize {
        self.total_evaluations
    }

    /// Total spins (operations reacting to cross-subsystem violations).
    pub fn spins(&self) -> usize {
        self.spins
    }

    /// Constraints currently *known* to be violated (by propagation in ADPM
    /// mode, by the latest verification results conventionally).
    pub fn known_violations(&self) -> Vec<ConstraintId> {
        self.known_violations.iter().copied().collect()
    }

    /// Drains the pending notifications for one designer.
    pub fn take_notifications(&mut self, designer: DesignerId) -> Vec<Event> {
        self.pending.remove(&designer).unwrap_or_default()
    }

    /// Whether the design process has terminated: the top-level problem is
    /// solved (hence all subproblems are), every problem output has a value,
    /// and no constraint is violated.
    pub fn design_complete(&self) -> bool {
        let Some(root) = self.problems.root() else {
            return false;
        };
        self.problems.problem(root).status() == ProblemStatus::Solved
            && self.problems.all_solved()
            && self.known_violations.is_empty()
    }

    /// Initializes the process before the first operation — the paper's
    /// "script automatically initializes this scenario" step. In ADPM mode
    /// the DCM propagates the initial requirements once so designers start
    /// with feasibility information; conventionally this is a no-op.
    /// Returns the number of constraint evaluations performed (counted in
    /// [`total_evaluations`](Self::total_evaluations) but not attributed to
    /// any operation).
    ///
    /// Also call this again after mutating the problem hierarchy directly
    /// through [`problems_mut`](Self::problems_mut) (e.g. wiring outputs
    /// onto freshly decomposed subproblems): manual wiring bypasses the
    /// transition function, so statuses and heuristics need a refresh.
    pub fn initialize(&mut self) -> usize {
        if self.config.mode != ManagementMode::Adpm {
            self.update_problem_statuses();
            self.event_buffer.clear();
            return 0;
        }
        let outcome = propagate_profiled(
            &mut self.network,
            &self.config.propagation,
            &*self.sink,
            &*self.clock,
        );
        self.heuristics = Some(HeuristicReport::mine(&self.network));
        self.refresh_known_violations_from_network();
        self.prev_snapshot = self.known_violations.clone();
        self.update_problem_statuses();
        self.event_buffer.clear();
        self.total_evaluations += outcome.evaluations;
        outcome.evaluations
    }

    /// Checks that every id an operation references exists in this DPM:
    /// the designer is registered, the problem is in the hierarchy, and the
    /// target properties/constraints are in the network.
    ///
    /// [`execute`](Self::execute) assumes valid ids (its lookups index
    /// directly and panic out of range, which is correct for the in-process
    /// loop where ids originate from this DPM). Call this first whenever an
    /// operation crosses a trust boundary — another thread, the wire — so
    /// the failure surfaces as a typed rejection instead of a panic on the
    /// engine thread.
    ///
    /// # Errors
    ///
    /// Returns the first [`OperationError`] found, checking the designer,
    /// then the problem, then the operator's property/constraint ids.
    pub fn validate_operation(&self, operation: &Operation) -> Result<(), OperationError> {
        let designer = operation.designer();
        if designer.index() >= self.designers.len() {
            return Err(OperationError::UnknownDesigner(designer));
        }
        let problem = operation.problem();
        if problem.index() >= self.problems.len() {
            return Err(OperationError::UnknownProblem(problem));
        }
        match operation.operator() {
            Operator::Assign { property, .. } | Operator::Unbind { property } => {
                if property.index() >= self.network.property_count() {
                    return Err(OperationError::UnknownProperty(*property));
                }
            }
            Operator::Verify { constraints } => {
                for cid in constraints {
                    if cid.index() >= self.network.constraint_count() {
                        return Err(OperationError::UnknownConstraint(*cid));
                    }
                }
            }
            Operator::Decompose { .. } => {}
            Operator::Relax { constraint, .. } => {
                if constraint.index() >= self.network.constraint_count() {
                    return Err(OperationError::UnknownConstraint(*constraint));
                }
            }
        }
        for cid in operation.repairs() {
            if cid.index() >= self.network.constraint_count() {
                return Err(OperationError::UnknownConstraint(*cid));
            }
        }
        Ok(())
    }

    /// Executes one design operation — the paper's `δ(s_n, θ_n)`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`NetworkError`] if the operator is invalid
    /// (e.g. a value outside `E_i`); the state is unchanged in that case and
    /// nothing is recorded.
    pub fn execute(&mut self, operation: Operation) -> Result<OperationRecord, NetworkError> {
        let trace = self.sink.is_enabled();
        let op_started = if trace { self.clock.now_us() } else { 0 };

        // Spin detection is judged against the state *before* the operation:
        // was the designer reacting to a known cross-subsystem violation?
        let spin = self.is_spin(&operation);

        let mut evaluations = 0usize;
        let mut verify_evaluations = 0usize;
        match operation.operator() {
            Operator::Assign { property, value } => {
                self.network.bind(*property, value.clone())?;
                if self.config.mode == ManagementMode::Conventional {
                    self.invalidate_verifications(*property);
                }
            }
            Operator::Unbind { property } => {
                self.network.unbind(*property)?;
                if self.config.mode == ManagementMode::Conventional {
                    self.invalidate_verifications(*property);
                }
            }
            Operator::Verify { constraints } => {
                verify_evaluations = self.run_verification(operation.problem(), constraints);
                evaluations += verify_evaluations;
            }
            Operator::Decompose { subproblems } => {
                for name in subproblems {
                    self.problems.decompose(operation.problem(), name.clone());
                }
            }
            Operator::Relax {
                constraint,
                relaxation,
            } => {
                // relax_constraint re-evaluates the rewritten constraint's
                // status immediately, so both flows see the conflict clear
                // even before the next propagation.
                self.network.relax_constraint(*constraint, *relaxation)?;
                evaluations += 1;
                // Keep the conflict ledger in step with the re-evaluated
                // status: ADPM refreshes it wholesale after propagation
                // below, but the conventional flow only updates it at
                // verifications, which would leave a relax-cleared
                // conflict on the books forever.
                if self.network.status(*constraint).is_violated() {
                    self.known_violations.insert(*constraint);
                } else {
                    self.known_violations.remove(constraint);
                }
            }
        }

        // Every fallible step is behind us: fold the operation into the
        // minimal state program before state observation begins.
        self.absorb_into_state_program(&operation);

        // ADPM: the DCM propagates after every operation and the results are
        // mined into heuristic support data.
        if self.config.mode == ManagementMode::Adpm {
            let before_sizes = self.feasible_sizes();
            let outcome = match self.config.propagation_kind {
                PropagationKind::Full => propagate_profiled(
                    &mut self.network,
                    &self.config.propagation,
                    &*self.sink,
                    &*self.clock,
                ),
                PropagationKind::Incremental => {
                    // The operation's target property is the dirty set; ops
                    // without one (verify, decompose) touch no values, so an
                    // empty set (plus the network's own dirty tracking) is
                    // exact. Unsound reuse — e.g. after an unbind — falls
                    // back to a full run inside propagate_incremental.
                    let dirty: Vec<PropertyId> =
                        operation.operator().target_property().into_iter().collect();
                    propagate_incremental_profiled(
                        &mut self.network,
                        &dirty,
                        &self.config.propagation,
                        &*self.sink,
                        &*self.clock,
                    )
                }
            };
            evaluations += outcome.evaluations;
            self.heuristics = Some(HeuristicReport::mine(&self.network));
            self.refresh_known_violations_from_network();
            self.emit_feasibility_events(&before_sizes);
        }

        let new_violations = self.violation_delta();
        self.update_problem_statuses();
        self.emit_violation_events(&new_violations);
        let fanout_started = if trace { self.clock.now_us() } else { 0 };
        let (recipients, delivered) = self.flush_events();
        let fanout_dur_us = if trace {
            self.clock.now_us().saturating_sub(fanout_started)
        } else {
            0
        };

        self.total_evaluations += evaluations;
        if spin {
            self.spins += 1;
        }
        let record = OperationRecord {
            sequence: self.op_base + self.history.len() + 1,
            operation,
            evaluations,
            violations_after: self.known_violations.len(),
            new_violations,
            spin,
        };
        self.history.push(record.clone());

        // Propagation evaluations were already counted by the DCM's own
        // instrumentation; only verification tool runs are added here.
        self.sink.incr(Counter::Operations, 1);
        self.sink.incr(Counter::Evaluations, verify_evaluations as u64);
        self.sink
            .incr(Counter::Violations, record.new_violations.len() as u64);
        self.sink.incr(Counter::Notifications, delivered as u64);
        if spin {
            self.sink.incr(Counter::Spins, 1);
        }
        if trace {
            for cid in &record.new_violations {
                self.sink.record(&TraceEvent::Violation {
                    seq: record.sequence as u64,
                    constraint: self.network.constraint(*cid).name(),
                    cross: self.network.is_cross_object(*cid),
                });
            }
            let target = match record.operation.operator().target_property() {
                Some(pid) => {
                    let prop = self.network.property(pid);
                    format!("{}.{}", prop.object(), prop.name())
                }
                None => String::new(),
            };
            let dur_us = self.clock.now_us().saturating_sub(op_started);
            self.sink.record(&TraceEvent::Operation {
                seq: record.sequence as u64,
                designer: record.operation.designer().index() as u32,
                kind: record.operation.operator().kind(),
                mode: self.config.mode.as_str(),
                target: &target,
                evaluations: record.evaluations as u64,
                violations_after: record.violations_after as u32,
                new_violations: record.new_violations.len() as u32,
                spin: record.spin,
                dur_us,
            });
            self.sink.time(SpanKind::Operation, dur_us);
            if delivered > 0 {
                self.sink.record(&TraceEvent::NotificationFanout {
                    seq: record.sequence as u64,
                    recipients,
                    events: delivered,
                    dur_us: fanout_dur_us,
                });
                self.sink.time(SpanKind::Fanout, fanout_dur_us);
            }
        }
        Ok(record)
    }

    /// Whether `operation` reacts to a known cross-subsystem violation —
    /// either because the designer tagged it as repair work for one, or
    /// because its target property sits in one.
    fn is_spin(&self, operation: &Operation) -> bool {
        let tagged = operation
            .repairs()
            .iter()
            .any(|cid| self.network.is_cross_object(*cid));
        if tagged {
            return true;
        }
        let Some(target) = operation.operator().target_property() else {
            return false;
        };
        self.known_violations
            .iter()
            .any(|cid| self.network.is_cross_object(*cid) && self.network.constraint(*cid).involves(target))
    }

    /// Folds one executed operation into the minimal state program (see
    /// [`state_program`](Self::state_program)). Replacement keeps the
    /// chronological position of the *latest* occurrence, which is what
    /// makes conventional-mode verification invalidation replay exactly:
    /// a verification left stale by a later re-assign replays before that
    /// assign with its arguments unbound, so it is skipped — the same
    /// `Consistent` outcome the invalidation produced live.
    fn absorb_into_state_program(&mut self, operation: &Operation) {
        match operation.operator() {
            Operator::Assign { property, .. } => {
                let target = *property;
                self.state_program.retain(|op| {
                    !matches!(op.operator(),
                              Operator::Assign { property, .. } if *property == target)
                });
                self.state_program.push(operation.clone());
            }
            Operator::Unbind { property } => {
                let target = *property;
                self.state_program.retain(|op| {
                    !matches!(op.operator(),
                              Operator::Assign { property, .. } if *property == target)
                });
            }
            Operator::Verify { constraints } => {
                let problem = operation.problem();
                self.state_program.retain(|op| {
                    op.problem() != problem
                        || !matches!(op.operator(),
                                     Operator::Verify { constraints: c } if c == constraints)
                });
                self.state_program.push(operation.clone());
            }
            Operator::Decompose { .. } | Operator::Relax { .. } => {
                self.state_program.push(operation.clone());
            }
        }
    }

    /// Conventional flow: re-binding a property invalidates earlier
    /// verification results for the constraints it appears in.
    fn invalidate_verifications(&mut self, property: PropertyId) {
        for cid in self.network.constraints_of(property).to_vec() {
            self.network.set_status(cid, ConstraintStatus::Consistent);
            self.known_violations.remove(&cid);
        }
    }

    /// Runs verification "tool runs" for the requested constraints (or all
    /// of the problem's constraints when unspecified), skipping constraints
    /// whose arguments are not all bound — verification operators execute
    /// only when their inputs are bound (paper §3.1.2).
    fn run_verification(&mut self, problem: ProblemId, constraints: &[ConstraintId]) -> usize {
        let targets: Vec<ConstraintId> = if constraints.is_empty() {
            self.problems.problem(problem).constraints().to_vec()
        } else {
            constraints.to_vec()
        };
        let mut evaluations = 0;
        for cid in targets {
            if !self.network.all_arguments_bound(cid) {
                continue;
            }
            evaluations += 1;
            let ok = self.network.check_constraint_point(cid);
            let status = if ok {
                ConstraintStatus::Satisfied
            } else {
                ConstraintStatus::Violated
            };
            self.network.set_status(cid, status);
            if ok {
                self.known_violations.remove(&cid);
            } else {
                self.known_violations.insert(cid);
            }
        }
        evaluations
    }

    fn refresh_known_violations_from_network(&mut self) {
        self.known_violations = self.network.violated_constraints().into_iter().collect();
    }

    fn feasible_sizes(&self) -> Vec<f64> {
        self.network
            .property_ids()
            .map(|pid| {
                self.network
                    .feasible(pid)
                    .relative_size(self.network.property(pid).initial_domain())
            })
            .collect()
    }

    fn emit_feasibility_events(&mut self, before: &[f64]) {
        let after = self.feasible_sizes();
        let mut events = Vec::new();
        for (idx, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            let pid = PropertyId::new(idx as u32);
            if self.network.is_bound(pid) {
                continue;
            }
            if *a <= 0.0 && *b > 0.0 {
                events.push(Event::FeasibleEmptied { property: pid });
            } else if a + 1e-9 < *b {
                events.push(Event::FeasibleReduced {
                    property: pid,
                    relative_size: *a,
                });
            }
        }
        self.queue_events(events);
    }

    /// Violations newly present since the last recorded operation.
    fn violation_delta(&self) -> Vec<ConstraintId> {
        self.known_violations
            .iter()
            .copied()
            .filter(|cid| !self.prev_snapshot.contains(cid))
            .collect()
    }

    fn emit_violation_events(&mut self, new_violations: &[ConstraintId]) {
        let mut events: Vec<Event> = new_violations
            .iter()
            .map(|cid| Event::ViolationDetected {
                constraint: *cid,
                properties: self.network.constraint(*cid).arguments(),
            })
            .collect();
        for cid in self.prev_snapshot.clone() {
            if !self.known_violations.contains(&cid) {
                events.push(Event::ViolationResolved { constraint: cid });
            }
        }
        self.queue_events(events);
        self.prev_snapshot = self.known_violations.clone();
    }

    fn queue_events(&mut self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        self.event_buffer.extend(events);
    }

    /// Routes the buffered events; returns `(recipients, events delivered)`
    /// — the Notification Manager's fan-out for this operation.
    fn flush_events(&mut self) -> (u32, u32) {
        if self.event_buffer.is_empty() {
            return (0, 0);
        }
        let events = std::mem::take(&mut self.event_buffer);
        let routed = self
            .nm
            .route(&events, &self.problems, &self.network, &self.designers);
        let (mut recipients, mut delivered) = (0u32, 0u32);
        for Notification { designer, events } in routed {
            recipients += 1;
            delivered += events.len() as u32;
            self.pending.entry(designer).or_default().extend(events);
        }
        (recipients, delivered)
    }

    /// Recomputes problem statuses bottom-up: a problem is *Solved* when all
    /// its outputs are bound, none of its constraints is known violated, all
    /// its constraints are known satisfied, and all its children are solved;
    /// *Waiting* while children remain unsolved; *Open* otherwise.
    fn update_problem_statuses(&mut self) {
        // Children have larger ids than parents (decompose appends), so a
        // reverse pass is a valid bottom-up order. A second pass settles
        // the sibling partial order (a predecessor declared earlier is
        // visited *after* its successors within one pass).
        for _ in 0..2 {
            self.update_problem_statuses_pass();
        }
    }

    fn update_problem_statuses_pass(&mut self) {
        let ids: Vec<ProblemId> = self.problems.ids().collect();
        for pid in ids.into_iter().rev() {
            let problem = self.problems.problem(pid);
            let children_solved = problem
                .children()
                .iter()
                .all(|c| self.problems.problem(*c).status() == ProblemStatus::Solved);
            let predecessors_solved = problem
                .predecessors()
                .iter()
                .all(|p| self.problems.problem(*p).status() == ProblemStatus::Solved);
            let outputs_bound = problem
                .outputs()
                .iter()
                .all(|p| self.network.is_bound(*p));
            let constraints_satisfied = problem
                .constraints()
                .iter()
                .all(|c| self.network.status(*c).is_satisfied());
            let solved = children_solved && outputs_bound && constraints_satisfied;
            let status = if solved {
                ProblemStatus::Solved
            } else if (!problem.children().is_empty() && !children_solved)
                || !predecessors_solved
            {
                // Waiting on subproblems or on the declared partial order;
                // problem selection (f_p) skips Waiting problems.
                ProblemStatus::Waiting
            } else {
                ProblemStatus::Open
            };
            let was = self.problems.problem(pid).status();
            if status != was {
                self.problems.problem_mut(pid).set_status(status);
                if status == ProblemStatus::Solved {
                    self.event_buffer.push(Event::ProblemSolved { problem: pid });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{
        expr::{cst, var},
        Domain, Property, Relation, Value,
    };

    /// Two-subsystem fixture modelled on the paper's receiver power budget:
    /// `P_f + P_s <= 200`, with the front-end and deserializer designed by
    /// different designers (so the budget is a cross-object constraint).
    fn fixture(mode: ManagementMode) -> (
        DesignProcessManager,
        DesignerId,
        DesignerId,
        ProblemId,
        ProblemId,
        ProblemId,
        PropertyId,
        PropertyId,
        ConstraintId,
    ) {
        let config = match mode {
            ManagementMode::Adpm => DpmConfig::adpm(),
            ManagementMode::Conventional => DpmConfig::conventional(),
        };
        fixture_with(config)
    }

    fn fixture_with(config: DpmConfig) -> (
        DesignProcessManager,
        DesignerId,
        DesignerId,
        ProblemId,
        ProblemId,
        ProblemId,
        PropertyId,
        PropertyId,
        ConstraintId,
    ) {
        let mut net = ConstraintNetwork::new();
        let pf = net
            .add_property(Property::new("P-front", "frontend", Domain::interval(0.0, 300.0)))
            .unwrap();
        let ps = net
            .add_property(Property::new("P-ser", "deser", Domain::interval(0.0, 300.0)))
            .unwrap();
        let budget = net
            .add_constraint("power", var(pf) + var(ps), Relation::Le, cst(200.0))
            .unwrap();
        let mut dpm = DesignProcessManager::new(net, config);
        let d0 = dpm.add_designer();
        let d1 = dpm.add_designer();
        let top = dpm.problems_mut().add_root("receiver");
        let front = dpm.problems_mut().decompose(top, "frontend");
        let deser = dpm.problems_mut().decompose(top, "deser");
        *dpm.problems_mut().problem_mut(top) = dpm
            .problems()
            .problem(top)
            .clone()
            .with_constraints([budget]);
        *dpm.problems_mut().problem_mut(front) = dpm
            .problems()
            .problem(front)
            .clone()
            .with_outputs([pf])
            .with_assignee(d0);
        *dpm.problems_mut().problem_mut(deser) = dpm
            .problems()
            .problem(deser)
            .clone()
            .with_outputs([ps])
            .with_assignee(d1);
        (dpm, d0, d1, top, front, deser, pf, ps, budget)
    }

    #[test]
    fn adpm_assign_triggers_propagation_and_narrows_neighbour() {
        let (mut dpm, d0, _, _, front, _, pf, ps, _) = fixture(ManagementMode::Adpm);
        let record = dpm
            .execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        assert!(record.evaluations > 0, "ADPM must run the DCM");
        let feasible = dpm.network().feasible(ps).enclosing_interval().unwrap();
        assert!((feasible.hi() - 50.0).abs() < 1e-9);
        assert!(dpm.heuristics().is_some());
    }

    #[test]
    fn compiled_engine_flows_through_dpm_config() {
        use adpm_constraint::PropagationEngine;

        let mut config = DpmConfig::adpm();
        config.propagation.engine = PropagationEngine::Compiled;
        let (mut dpm, d0, _, _, front, _, pf, ps, _) = fixture_with(config);
        let record = dpm
            .execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        assert!(record.evaluations > 0);
        // Same fixed point as the interpreter reaches in
        // `adpm_assign_triggers_propagation_and_narrows_neighbour`.
        let feasible = dpm.network().feasible(ps).enclosing_interval().unwrap();
        assert!((feasible.hi() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn conventional_assign_runs_no_evaluations() {
        let (mut dpm, d0, _, _, front, _, pf, ps, _) = fixture(ManagementMode::Conventional);
        let record = dpm
            .execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        assert_eq!(record.evaluations, 0);
        // No propagation: the neighbour's feasible range is untouched.
        let feasible = dpm.network().feasible(ps).enclosing_interval().unwrap();
        assert_eq!(feasible.hi(), 300.0);
        assert!(dpm.heuristics().is_none());
    }

    #[test]
    fn adpm_detects_violation_immediately() {
        let (mut dpm, d0, d1, _, front, deser, pf, ps, budget) = fixture(ManagementMode::Adpm);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        let record = dpm
            .execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        assert_eq!(record.new_violations, vec![budget]);
        assert_eq!(dpm.known_violations(), vec![budget]);
    }

    #[test]
    fn conventional_violation_surfaces_only_at_verification() {
        let (mut dpm, d0, d1, top, front, deser, pf, ps, budget) =
            fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        let record = dpm
            .execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        assert!(record.new_violations.is_empty(), "not yet verified");
        assert!(dpm.known_violations().is_empty());
        // Integration-time verification of the top-level budget.
        let record = dpm.execute(Operation::verify(d0, top)).unwrap();
        assert_eq!(record.evaluations, 1);
        assert_eq!(record.new_violations, vec![budget]);
        assert_eq!(dpm.known_violations(), vec![budget]);
    }

    #[test]
    fn verification_skips_constraints_with_unbound_arguments() {
        let (mut dpm, d0, _, top, front, _, pf, _, _) = fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        let record = dpm.execute(Operation::verify(d0, top)).unwrap();
        assert_eq!(record.evaluations, 0, "P-ser is still unbound");
    }

    #[test]
    fn conventional_rebinding_invalidates_stale_results() {
        let (mut dpm, d0, d1, top, front, deser, pf, ps, budget) =
            fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        dpm.execute(Operation::verify(d0, top)).unwrap();
        assert_eq!(dpm.known_violations(), vec![budget]);
        // Repairing the value clears the stale Violated verdict (unknown
        // again until re-verified) rather than leaving it or assuming Fixed.
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(40.0)))
            .unwrap();
        assert!(dpm.known_violations().is_empty());
        assert_eq!(
            dpm.network().status(budget),
            ConstraintStatus::Consistent
        );
    }

    #[test]
    fn spin_is_counted_for_repair_of_cross_object_violation() {
        let (mut dpm, d0, d1, top, front, deser, pf, ps, budget) =
            fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        dpm.execute(Operation::verify(d0, top)).unwrap();
        assert_eq!(dpm.spins(), 0);
        // The repair operation reacts to a known cross-subsystem violation.
        let record = dpm
            .execute(
                Operation::assign(d1, deser, ps, Value::number(40.0)).with_repairs([budget]),
            )
            .unwrap();
        assert!(record.spin);
        assert_eq!(dpm.spins(), 1);
    }

    #[test]
    fn untagged_repair_of_known_cross_violation_is_still_a_spin() {
        let (mut dpm, d0, d1, _, front, deser, pf, ps, _) = fixture(ManagementMode::Adpm);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        // ADPM already knows the budget is violated; the next touch of an
        // involved property is integration-rework by definition.
        let record = dpm
            .execute(Operation::assign(d1, deser, ps, Value::number(40.0)))
            .unwrap();
        assert!(record.spin);
    }

    #[test]
    fn forward_work_is_not_a_spin() {
        let (mut dpm, d0, _, _, front, _, pf, _, _) = fixture(ManagementMode::Adpm);
        let record = dpm
            .execute(Operation::assign(d0, front, pf, Value::number(100.0)))
            .unwrap();
        assert!(!record.spin);
        assert_eq!(dpm.spins(), 0);
    }

    #[test]
    fn design_completes_when_everything_bound_and_satisfied() {
        let (mut dpm, d0, d1, top, front, deser, pf, ps, _) = fixture(ManagementMode::Adpm);
        assert!(!dpm.design_complete());
        dpm.execute(Operation::assign(d0, front, pf, Value::number(120.0)))
            .unwrap();
        assert!(!dpm.design_complete());
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(60.0)))
            .unwrap();
        assert!(dpm.design_complete());
        assert_eq!(
            dpm.problems().problem(top).status(),
            ProblemStatus::Solved
        );
        assert_eq!(
            dpm.problems().problem(front).status(),
            ProblemStatus::Solved
        );
        assert_eq!(
            dpm.problems().problem(deser).status(),
            ProblemStatus::Solved
        );
    }

    #[test]
    fn conventional_needs_verification_to_complete() {
        let (mut dpm, d0, d1, top, front, deser, pf, ps, _) =
            fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(120.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(60.0)))
            .unwrap();
        assert!(
            !dpm.design_complete(),
            "constraint status unknown until verified"
        );
        dpm.execute(Operation::verify(d0, top)).unwrap();
        assert!(dpm.design_complete());
    }

    #[test]
    fn notifications_are_routed_and_drained() {
        let (mut dpm, d0, d1, _, front, _deser, pf, ps, _) = fixture(ManagementMode::Adpm);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        // The deserializer designer hears that P-ser's feasible range shrank.
        let events = dpm.take_notifications(d1);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::FeasibleReduced { property, .. } if *property == ps)),
            "expected FeasibleReduced for P-ser, got {events:?}"
        );
        // Draining empties the queue.
        assert!(dpm.take_notifications(d1).is_empty());
    }

    #[test]
    fn violation_notifications_reach_both_designers() {
        let (mut dpm, d0, d1, _, front, deser, pf, ps, _) = fixture(ManagementMode::Adpm);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        for d in [d0, d1] {
            let events = dpm.take_notifications(d);
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::ViolationDetected { .. })),
                "{d} missed the violation, got {events:?}"
            );
        }
    }

    #[test]
    fn decompose_operation_extends_hierarchy() {
        let (mut dpm, d0, _, top, _, _, _, _, _) = fixture(ManagementMode::Adpm);
        let before = dpm.problems().len();
        dpm.execute(Operation::decompose(d0, top, ["bias network"]))
            .unwrap();
        assert_eq!(dpm.problems().len(), before + 1);
    }

    #[test]
    fn failed_operation_leaves_no_history_entry() {
        let (mut dpm, d0, _, _, front, _, pf, _, _) = fixture(ManagementMode::Adpm);
        let err = dpm.execute(Operation::assign(d0, front, pf, Value::number(999.0)));
        assert!(err.is_err());
        assert!(dpm.history().is_empty());
        assert_eq!(dpm.total_evaluations(), 0);
    }

    #[test]
    fn history_records_sequence_and_totals() {
        let (mut dpm, d0, d1, _, front, deser, pf, ps, _) = fixture(ManagementMode::Adpm);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(120.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(60.0)))
            .unwrap();
        assert_eq!(dpm.history().len(), 2);
        assert_eq!(dpm.history()[0].sequence, 1);
        assert_eq!(dpm.history()[1].sequence, 2);
        let sum: usize = dpm.history().iter().map(|r| r.evaluations).sum();
        assert_eq!(sum, dpm.total_evaluations());
    }

    #[test]
    fn unbind_reverses_assignment_and_invalidates_conventionally() {
        let (mut dpm, d0, _, _top, front, _, pf, _, _) = fixture(ManagementMode::Conventional);
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        assert!(dpm.network().is_bound(pf));
        // Verify the (single-argument-bound) constraints; none are ready
        // since P-ser is unbound, so this records nothing — then unbind.
        dpm.execute(Operation::unbind(d0, front, pf)).unwrap();
        assert!(!dpm.network().is_bound(pf));
        assert!(dpm.known_violations().is_empty());
        assert_eq!(dpm.history().len(), 2);
    }

    #[test]
    fn unbind_in_adpm_restores_feasible_space() {
        let (mut dpm, d0, _, _, front, _, pf, ps, _) = fixture(ManagementMode::Adpm);

        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        let narrowed = dpm.network().feasible(ps).enclosing_interval().unwrap();
        assert!((narrowed.hi() - 50.0).abs() < 1e-9);
        dpm.execute(Operation::unbind(d0, front, pf)).unwrap();
        let restored = dpm.network().feasible(ps).enclosing_interval().unwrap();
        assert!((restored.hi() - 200.0).abs() < 1e-9, "restored = {restored}");
    }

    #[test]
    fn initialize_gives_adpm_feasibility_before_any_operation() {
        let (mut dpm, ..) = fixture(ManagementMode::Adpm);
        let evals = dpm.initialize();
        assert!(evals > 0);
        assert!(dpm.heuristics().is_some());
        assert_eq!(dpm.history().len(), 0);
        assert_eq!(dpm.total_evaluations(), evals);
        // Conventional initialize is a no-op evaluation-wise.
        let (mut conv, ..) = fixture(ManagementMode::Conventional);
        assert_eq!(conv.initialize(), 0);
        assert!(conv.heuristics().is_none());
    }

    #[test]
    fn incremental_dpm_matches_full_dpm_and_costs_less() {
        let build = |config: DpmConfig| {
            let mut net = ConstraintNetwork::new();
            let x = net
                .add_property(Property::new("x", "a", Domain::interval(0.0, 10.0)))
                .unwrap();
            let y = net
                .add_property(Property::new("y", "b", Domain::interval(0.0, 10.0)))
                .unwrap();
            let z = net
                .add_property(Property::new("z", "b", Domain::interval(0.0, 10.0)))
                .unwrap();
            net.add_constraint("xy", var(x) + var(y), Relation::Le, cst(12.0))
                .unwrap();
            net.add_constraint("z", var(z), Relation::Le, cst(7.0)).unwrap();
            let mut dpm = DesignProcessManager::new(net, config);
            let d = dpm.add_designer();
            let top = dpm.problems_mut().add_root("top");
            *dpm.problems_mut().problem_mut(top) = dpm
                .problems()
                .problem(top)
                .clone()
                .with_outputs([x, y, z])
                .with_assignee(d);
            dpm.initialize();
            (dpm, d, top, [x, y, z])
        };
        let (mut full, d, top, [x, y, z]) = build(DpmConfig::adpm());
        let (mut inc, ..) = build(DpmConfig::adpm_incremental());

        let ops = [
            Operation::assign(d, top, x, Value::number(9.0)),
            Operation::assign(d, top, y, Value::number(3.0)),
            Operation::assign(d, top, z, Value::number(5.0)),
        ];
        for op in ops {
            let fr = full.execute(op.clone()).unwrap();
            let ir = inc.execute(op).unwrap();
            // Same observable state after every operation...
            assert_eq!(fr.violations_after, ir.violations_after);
            assert_eq!(fr.new_violations, ir.new_violations);
            for pid in full.network().property_ids() {
                assert_eq!(full.network().feasible(pid), inc.network().feasible(pid));
            }
            for cid in full.network().constraint_ids() {
                assert_eq!(full.network().status(cid), inc.network().status(cid));
            }
            // ...for strictly fewer constraint evaluations.
            assert!(
                ir.evaluations < fr.evaluations,
                "incremental {} !< full {}",
                ir.evaluations,
                fr.evaluations
            );
        }
        assert!(full.design_complete() && inc.design_complete());
        assert!(inc.total_evaluations() < full.total_evaluations());
    }

    #[test]
    fn mode_accessors() {
        assert!(ManagementMode::Adpm.is_adpm());
        assert!(!ManagementMode::Conventional.is_adpm());
        assert_eq!(ManagementMode::Adpm.as_str(), "adpm");
        assert_eq!(ManagementMode::Conventional.as_str(), "conventional");
        let (dpm, ..) = fixture(ManagementMode::Adpm);
        assert_eq!(dpm.mode(), ManagementMode::Adpm);
        assert_eq!(dpm.designers().len(), 2);
    }

    #[test]
    fn sink_counters_mirror_the_dpm_totals() {
        use adpm_observe::InMemorySink;

        let (mut dpm, d0, d1, top, front, deser, pf, ps, budget) =
            fixture(ManagementMode::Conventional);
        let sink = Arc::new(InMemorySink::new());
        dpm.set_sink(sink.clone());
        dpm.initialize();
        dpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        dpm.execute(Operation::assign(d1, deser, ps, Value::number(100.0)))
            .unwrap();
        dpm.execute(Operation::verify(d0, top)).unwrap();
        dpm.execute(
            Operation::assign(d1, deser, ps, Value::number(40.0)).with_repairs([budget]),
        )
        .unwrap();
        dpm.execute(Operation::verify(d0, top)).unwrap();

        assert_eq!(sink.get(Counter::Operations), dpm.history().len() as u64);
        assert_eq!(
            sink.get(Counter::Evaluations),
            dpm.total_evaluations() as u64
        );
        assert_eq!(sink.get(Counter::Spins), dpm.spins() as u64);
        // Conventional mode never propagates.
        assert_eq!(sink.get(Counter::Propagations), 0);
        assert!(sink.get(Counter::Violations) >= 1);

        // ADPM mode: propagation counters flow through the same sink, and
        // evaluations still reconcile with the DPM's total (initialize's
        // setup propagation included).
        let (mut adpm, d0, _, _, front, _, pf, _, _) = fixture(ManagementMode::Adpm);
        let sink = Arc::new(InMemorySink::new());
        adpm.set_sink(sink.clone());
        adpm.initialize();
        adpm.execute(Operation::assign(d0, front, pf, Value::number(150.0)))
            .unwrap();
        assert_eq!(sink.get(Counter::Propagations), 2);
        assert_eq!(
            sink.get(Counter::Evaluations),
            adpm.total_evaluations() as u64
        );
        assert!(sink.get(Counter::Waves) >= 2);
        assert!(sink.get(Counter::Notifications) >= 1);
    }

    #[test]
    fn validate_operation_rejects_out_of_range_ids() {
        let (mut dpm, d0, _, top, front, _, pf, _, budget) = fixture(ManagementMode::Adpm);
        dpm.initialize();
        let ok = Operation::assign(d0, front, pf, Value::number(150.0));
        assert_eq!(dpm.validate_operation(&ok), Ok(()));

        let ghost_designer = DesignerId::new(99);
        assert_eq!(
            dpm.validate_operation(&Operation::assign(ghost_designer, front, pf, Value::number(1.0))),
            Err(OperationError::UnknownDesigner(ghost_designer))
        );
        let ghost_problem = ProblemId::new(99);
        assert_eq!(
            dpm.validate_operation(&Operation::assign(d0, ghost_problem, pf, Value::number(1.0))),
            Err(OperationError::UnknownProblem(ghost_problem))
        );
        let ghost_property = PropertyId::new(99);
        assert_eq!(
            dpm.validate_operation(&Operation::assign(d0, front, ghost_property, Value::number(1.0))),
            Err(OperationError::UnknownProperty(ghost_property))
        );
        let ghost_constraint = ConstraintId::new(99);
        assert_eq!(
            dpm.validate_operation(&Operation::new(
                d0,
                top,
                Operator::Verify { constraints: vec![ghost_constraint] },
            )),
            Err(OperationError::UnknownConstraint(ghost_constraint))
        );
        assert_eq!(
            dpm.validate_operation(&ok.clone().with_repairs([ghost_constraint])),
            Err(OperationError::UnknownConstraint(ghost_constraint))
        );
        // Repairs naming a real constraint pass.
        assert_eq!(dpm.validate_operation(&ok.with_repairs([budget])), Ok(()));
        // Errors render as human-readable text.
        assert!(OperationError::UnknownDesigner(ghost_designer)
            .to_string()
            .contains("designer"));
    }
}
