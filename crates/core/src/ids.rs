//! Typed identifiers for design problems and designers.

use std::fmt;

/// Identifier of a design problem (`p_i` in the paper).
///
/// # Examples
///
/// ```
/// use adpm_core::ProblemId;
/// let p = ProblemId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "prob0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProblemId(u32);

impl ProblemId {
    /// Creates a problem id from a raw index.
    pub const fn new(index: u32) -> Self {
        ProblemId(index)
    }

    /// Returns the raw index, suitable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProblemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prob{}", self.0)
    }
}

/// Identifier of a (human or simulated) designer `d_i`.
///
/// # Examples
///
/// ```
/// use adpm_core::DesignerId;
/// let d = DesignerId::new(2);
/// assert_eq!(d.to_string(), "designer2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignerId(u32);

impl DesignerId {
    /// Creates a designer id from a raw index.
    pub const fn new(index: u32) -> Self {
        DesignerId(index)
    }

    /// Returns the raw index, suitable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DesignerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "designer{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_order() {
        assert_eq!(ProblemId::new(4).index(), 4);
        assert_eq!(DesignerId::new(4).index(), 4);
        assert!(ProblemId::new(1) < ProblemId::new(2));
        assert!(DesignerId::new(1) < DesignerId::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProblemId::new(3).to_string(), "prob3");
        assert_eq!(DesignerId::new(0).to_string(), "designer0");
    }
}
