//! Constraint-related events and the Notification Manager.
//!
//! ADPM's NM "alerts designers of constraint-related events, including
//! violations and reductions of a property's feasible subspace. It selects
//! subsets of `H_{n+1}` relevant to each designer and includes them in
//! notifications" (paper §2.2). Here the NM routes events to every designer
//! whose assigned problems touch the affected properties.

use crate::ids::{DesignerId, ProblemId};
use crate::problem::ProblemSet;
use adpm_constraint::{ConstraintId, ConstraintNetwork, PropertyId};
use std::collections::BTreeSet;
use std::fmt;

/// A concrete conflict-resolution offer put to the participants of a
/// negotiation round: relax a constraint (widen its bound or drop a soft
/// one) or back a bound property out of the conflict.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// Widen the constraint's bound by `slack` (the paper's "negotiate the
    /// requirement" move).
    Widen {
        /// The constraint whose bound would move.
        constraint: ConstraintId,
        /// How far the bound would move, in the constraint's units.
        slack: f64,
    },
    /// Drop a soft constraint entirely.
    DropSoft {
        /// The soft constraint that would be dropped.
        constraint: ConstraintId,
    },
    /// Unbind a property involved in the conflict (localized backtracking).
    Unbind {
        /// The bound property that would be freed.
        property: PropertyId,
    },
}

impl Proposal {
    /// Short kind name for wire frames and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Proposal::Widen { .. } => "widen",
            Proposal::DropSoft { .. } => "drop",
            Proposal::Unbind { .. } => "unbind",
        }
    }

    /// The constraint the proposal rewrites, if any.
    pub fn constraint(&self) -> Option<ConstraintId> {
        match self {
            Proposal::Widen { constraint, .. } | Proposal::DropSoft { constraint } => {
                Some(*constraint)
            }
            Proposal::Unbind { .. } => None,
        }
    }

    /// The property the proposal unbinds, if any.
    pub fn property(&self) -> Option<PropertyId> {
        match self {
            Proposal::Unbind { property } => Some(*property),
            _ => None,
        }
    }

    /// The widen slack (0 for non-widen proposals).
    pub fn slack(&self) -> f64 {
        match self {
            Proposal::Widen { slack, .. } => *slack,
            _ => 0.0,
        }
    }

    /// The properties the proposal touches (the rewritten constraint's
    /// arguments, or the unbound property) — what "this proposal affects
    /// your viewpoint" means for a negotiation policy.
    pub fn touched_properties(&self, network: &ConstraintNetwork) -> Vec<PropertyId> {
        match self {
            Proposal::Widen { constraint, .. } | Proposal::DropSoft { constraint } => {
                network.constraint(*constraint).argument_slice().to_vec()
            }
            Proposal::Unbind { property } => vec![*property],
        }
    }
}

impl fmt::Display for Proposal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proposal::Widen { constraint, slack } => {
                write!(f, "widen {constraint} by {slack}")
            }
            Proposal::DropSoft { constraint } => write!(f, "drop soft {constraint}"),
            Proposal::Unbind { property } => write!(f, "unbind {property}"),
        }
    }
}

/// A participant's verdict on a proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegotiationAnswer {
    /// The participant accepts the proposal as-is.
    Accept,
    /// The participant rejects the proposal without an alternative.
    Reject,
    /// The participant rejects the proposal and offers an alternative.
    Counter,
}

impl NegotiationAnswer {
    /// Short name for wire frames and logs.
    pub fn name(self) -> &'static str {
        match self {
            NegotiationAnswer::Accept => "accept",
            NegotiationAnswer::Reject => "reject",
            NegotiationAnswer::Counter => "counter",
        }
    }
}

/// A constraint-related event worth telling a designer about.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A constraint became violated.
    ViolationDetected {
        /// The violated constraint.
        constraint: ConstraintId,
        /// Its arguments (so receivers can relate it to their properties).
        properties: Vec<PropertyId>,
    },
    /// A previously violated constraint is no longer violated.
    ViolationResolved {
        /// The recovered constraint.
        constraint: ConstraintId,
    },
    /// A property's feasible subspace shrank.
    FeasibleReduced {
        /// The affected property.
        property: PropertyId,
        /// New size relative to the initial range, in `[0, 1]`.
        relative_size: f64,
    },
    /// A property's feasible subspace became empty — every remaining choice
    /// conflicts with some constraint.
    FeasibleEmptied {
        /// The affected property.
        property: PropertyId,
    },
    /// A problem reached the Solved status.
    ProblemSolved {
        /// The solved problem.
        problem: ProblemId,
    },
    /// A negotiation round put a relaxation proposal to the conflict's
    /// participants.
    NegotiationProposed {
        /// The seed conflict being negotiated.
        constraint: ConstraintId,
        /// 1-based round number.
        round: u32,
        /// The designer the proposal is attributed to.
        proposer: DesignerId,
        /// The offered relaxation.
        proposal: Proposal,
    },
    /// A participant answered the current round's proposal.
    NegotiationAnswered {
        /// The seed conflict being negotiated.
        constraint: ConstraintId,
        /// 1-based round number.
        round: u32,
        /// The answering designer.
        designer: DesignerId,
        /// The verdict.
        answer: NegotiationAnswer,
        /// The alternative offered with a [`NegotiationAnswer::Counter`].
        counter: Option<Proposal>,
    },
    /// A negotiation finished — either an accepted relaxation was applied
    /// or the round budget ran out.
    NegotiationClosed {
        /// The seed conflict that was negotiated.
        constraint: ConstraintId,
        /// The minimal conflicting set's properties (for routing).
        properties: Vec<PropertyId>,
        /// Rounds run.
        rounds: u32,
        /// Whether an accepted relaxation resolved the conflict.
        resolved: bool,
    },
}

impl Event {
    /// The properties this event concerns (used for routing).
    pub fn properties(&self) -> Vec<PropertyId> {
        match self {
            Event::ViolationDetected { properties, .. } => properties.clone(),
            Event::ViolationResolved { .. } | Event::ProblemSolved { .. } => Vec::new(),
            Event::FeasibleReduced { property, .. } | Event::FeasibleEmptied { property } => {
                vec![*property]
            }
            Event::NegotiationProposed { proposal, .. } => {
                proposal.property().into_iter().collect()
            }
            Event::NegotiationAnswered { .. } => Vec::new(),
            Event::NegotiationClosed { properties, .. } => properties.clone(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::ViolationDetected { constraint, .. } => {
                write!(f, "violation detected on {constraint}")
            }
            Event::ViolationResolved { constraint } => {
                write!(f, "violation resolved on {constraint}")
            }
            Event::FeasibleReduced {
                property,
                relative_size,
            } => write!(
                f,
                "feasible subspace of {property} reduced to {:.1}% of its range",
                relative_size * 100.0
            ),
            Event::FeasibleEmptied { property } => {
                write!(f, "feasible subspace of {property} is empty")
            }
            Event::ProblemSolved { problem } => write!(f, "{problem} solved"),
            Event::NegotiationProposed {
                constraint,
                round,
                proposer,
                proposal,
            } => write!(
                f,
                "negotiation on {constraint} round {round}: {proposer} proposes {proposal}"
            ),
            Event::NegotiationAnswered {
                constraint,
                round,
                designer,
                answer,
                ..
            } => write!(
                f,
                "negotiation on {constraint} round {round}: {designer} answers {}",
                answer.name()
            ),
            Event::NegotiationClosed {
                constraint,
                rounds,
                resolved,
                ..
            } => write!(
                f,
                "negotiation on {constraint} {} after {rounds} round(s)",
                if *resolved { "resolved" } else { "abandoned" }
            ),
        }
    }
}

/// A batch of events delivered to one designer after one transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The receiving designer.
    pub designer: DesignerId,
    /// The events relevant to that designer, in emission order.
    pub events: Vec<Event>,
}

/// Routes events to the designers they are relevant to.
///
/// An event is relevant to designer `d` if it mentions a property that is an
/// input or output of a problem assigned to `d`, if it mentions one of `d`'s
/// problems, or if it is a violation on a constraint of one of `d`'s
/// problems. Violation events with no such link are still broadcast to all
/// designers — cross-subsystem conflicts concern everyone, which is the
/// collaborative point of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct NotificationManager;

impl NotificationManager {
    /// Creates a notification manager.
    pub fn new() -> Self {
        NotificationManager
    }

    /// Splits `events` into per-designer notifications.
    pub fn route(
        &self,
        events: &[Event],
        problems: &ProblemSet,
        network: &ConstraintNetwork,
        designers: &[DesignerId],
    ) -> Vec<Notification> {
        designers
            .iter()
            .map(|d| {
                // Hoist the designer's problem/property sets out of the
                // per-event relevance check.
                let my_problems = problems.assigned_to(*d);
                let my_properties: BTreeSet<PropertyId> = my_problems
                    .iter()
                    .flat_map(|pid| {
                        let p = problems.problem(*pid);
                        p.inputs().iter().chain(p.outputs().iter()).copied()
                    })
                    .collect();
                Notification {
                    designer: *d,
                    events: events
                        .iter()
                        .filter(|e| {
                            self.relevant(e, &my_problems, &my_properties, problems, network)
                        })
                        .cloned()
                        .collect(),
                }
            })
            .filter(|n| !n.events.is_empty())
            .collect()
    }

    fn relevant(
        &self,
        event: &Event,
        my_problems: &[crate::ids::ProblemId],
        my_properties: &BTreeSet<PropertyId>,
        problems: &ProblemSet,
        network: &ConstraintNetwork,
    ) -> bool {
        match event {
            Event::ViolationDetected {
                constraint,
                properties,
            } => {
                properties.iter().any(|p| my_properties.contains(p))
                    || my_problems
                        .iter()
                        .any(|pid| problems.problem(*pid).constraints().contains(constraint))
                    // Cross-object violations concern the whole team.
                    || network.is_cross_object(*constraint)
            }
            Event::ViolationResolved { constraint } => {
                network
                    .constraint(*constraint)
                    .argument_slice()
                    .iter()
                    .any(|p| my_properties.contains(p))
                    || network.is_cross_object(*constraint)
            }
            Event::FeasibleReduced { property, .. } | Event::FeasibleEmptied { property } => {
                my_properties.contains(property)
            }
            Event::ProblemSolved { problem } => {
                my_problems.contains(problem)
                    || problems.problem(*problem).parent().map(|pp| my_problems.contains(&pp))
                        == Some(true)
            }
            // Negotiation events follow the seed conflict's relevance rule:
            // a negotiated conflict concerns whoever the violation itself
            // would concern (and, like cross-object violations, the whole
            // team when the seed spans objects).
            Event::NegotiationProposed { constraint, .. }
            | Event::NegotiationAnswered { constraint, .. } => {
                network
                    .constraint(*constraint)
                    .argument_slice()
                    .iter()
                    .any(|p| my_properties.contains(p))
                    || my_problems
                        .iter()
                        .any(|pid| problems.problem(*pid).constraints().contains(constraint))
                    || network.is_cross_object(*constraint)
            }
            Event::NegotiationClosed {
                constraint,
                properties,
                ..
            } => {
                properties.iter().any(|p| my_properties.contains(p))
                    || my_problems
                        .iter()
                        .any(|pid| problems.problem(*pid).constraints().contains(constraint))
                    || network.is_cross_object(*constraint)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{expr::var, Domain, Property, Relation};

    fn setup() -> (ProblemSet, ConstraintNetwork, Vec<PropertyId>, ConstraintId) {
        let mut net = ConstraintNetwork::new();
        let a = net
            .add_property(Property::new("a", "analog", Domain::interval(0.0, 1.0)))
            .unwrap();
        let b = net
            .add_property(Property::new("b", "filter", Domain::interval(0.0, 1.0)))
            .unwrap();
        let c = net
            .add_constraint("cross", var(a), Relation::Le, var(b))
            .unwrap();
        let mut problems = ProblemSet::new();
        let top = problems.add_root("system");
        let analog = problems.decompose(top, "analog");
        let filter = problems.decompose(top, "filter");
        problems.problem_mut(analog).set_assignee(Some(DesignerId::new(0)));
        problems.problem_mut(filter).set_assignee(Some(DesignerId::new(1)));
        *problems.problem_mut(analog) = problems
            .problem(analog)
            .clone()
            .with_outputs([a])
            .with_assignee(DesignerId::new(0));
        *problems.problem_mut(filter) = problems
            .problem(filter)
            .clone()
            .with_outputs([b])
            .with_assignee(DesignerId::new(1));
        (problems, net, vec![a, b], c)
    }

    #[test]
    fn feasible_events_go_to_property_owner_only() {
        let (problems, net, props, _) = setup();
        let nm = NotificationManager::new();
        let events = vec![Event::FeasibleReduced {
            property: props[0],
            relative_size: 0.5,
        }];
        let designers = [DesignerId::new(0), DesignerId::new(1)];
        let routed = nm.route(&events, &problems, &net, &designers);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].designer, DesignerId::new(0));
    }

    #[test]
    fn cross_object_violations_reach_everyone() {
        let (problems, net, props, c) = setup();
        let nm = NotificationManager::new();
        let events = vec![Event::ViolationDetected {
            constraint: c,
            properties: props.clone(),
        }];
        let designers = [DesignerId::new(0), DesignerId::new(1)];
        let routed = nm.route(&events, &problems, &net, &designers);
        assert_eq!(routed.len(), 2);
    }

    #[test]
    fn empty_notifications_are_dropped() {
        let (problems, net, _, _) = setup();
        let nm = NotificationManager::new();
        let routed = nm.route(&[], &problems, &net, &[DesignerId::new(0)]);
        assert!(routed.is_empty());
    }

    #[test]
    fn problem_solved_goes_to_assignee_and_parent_owner() {
        let (problems, net, _, _) = setup();
        let nm = NotificationManager::new();
        let filter_problem = problems.ids().nth(2).unwrap();
        let events = vec![Event::ProblemSolved {
            problem: filter_problem,
        }];
        let designers = [DesignerId::new(0), DesignerId::new(1)];
        let routed = nm.route(&events, &problems, &net, &designers);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].designer, DesignerId::new(1));
    }

    #[test]
    fn event_properties_for_routing() {
        let e = Event::FeasibleEmptied {
            property: PropertyId::new(4),
        };
        assert_eq!(e.properties(), vec![PropertyId::new(4)]);
        let e = Event::ViolationResolved {
            constraint: ConstraintId::new(0),
        };
        assert!(e.properties().is_empty());
    }

    #[test]
    fn event_display_is_informative() {
        let e = Event::FeasibleReduced {
            property: PropertyId::new(1),
            relative_size: 0.25,
        };
        assert!(e.to_string().contains("25.0%"));
        let e = Event::FeasibleEmptied {
            property: PropertyId::new(1),
        };
        assert!(e.to_string().contains("empty"));
    }
}
