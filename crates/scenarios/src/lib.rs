//! # adpm-scenarios
//!
//! The design cases evaluated in *Application of Constraint-Based
//! Heuristics in Collaborative Design* (DAC 2001), reconstructed as DDDL
//! scenarios:
//!
//! * [`sensing_system`] — the MEMS pressure-sensing system (26 properties,
//!   21 constraints, mostly linear/monotonic);
//! * [`wireless_receiver`] — the MEMS-based wireless receiver front-end
//!   (32 properties, 30 constraints, mostly non-linear — the "harder"
//!   case), with the system-gain requirement parameterizable for the
//!   paper's Fig. 10 tightness sweep
//!   ([`wireless_receiver_with_gain`]);
//! * [`lna_walkthrough`] — the §2.4 LNA/filter story behind Figs. 2–4.
//!
//! Each function returns a compiled
//! [`CompiledScenario`](adpm_dddl::CompiledScenario) from which any number
//! of independent design-process managers can be built (one per simulation
//! run).
//!
//! ```
//! use adpm_scenarios::sensing_system;
//! use adpm_core::DpmConfig;
//! let scenario = sensing_system();
//! let dpm = scenario.build_dpm(DpmConfig::adpm());
//! assert_eq!(dpm.designers().len(), 3);
//! ```
//!
//! To watch what a scenario does under simulation, pass a sink from
//! `adpm-observe` to `adpm_teamsim`'s `run_once_with_sink` (or use
//! `adpm run <file> --trace out.jsonl` on the CLI) — the trace schema is
//! documented in `docs/OBSERVABILITY.md`, with a worked example reading a
//! [`sensing_system`] trace.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pipeline;
mod receiver;
mod sensing;
mod walkthrough;

pub use pipeline::{pipeline, pipeline_dddl, MAX_PIPELINE_STAGES};
pub use receiver::{
    receiver_dddl, wireless_receiver, wireless_receiver_with_gain, DEFAULT_GAIN_REQUIREMENT,
};
pub use sensing::{sensing_system, SENSING_DDDL};
pub use walkthrough::{lna_walkthrough, WALKTHROUGH_DDDL};
