//! The MEMS pressure-sensing-system design case (paper §3.2, first case).
//!
//! A capacitive pressure sensor and a mixed-signal interface circuit are
//! designed concurrently, with top-level constraints on sensing resolution,
//! estimated yield, and achievable pressure range. The network holds 26
//! properties and 21 constraints, most of them linear and monotonic —
//! matching the sizes the paper reports for this case.
//!
//! The paper's actual networks were proprietary Minerva III configurations;
//! this reconstruction keeps the published structure (two concurrently
//! designed subsystems + a leader-owned system problem whose constraints
//! couple them) and the published requirement types.

use adpm_dddl::{compile_source, CompiledScenario};

/// DDDL source for the sensing-system scenario.
pub const SENSING_DDDL: &str = r#"
// MEMS pressure-sensing system: capacitive sensor + mixed-signal interface.
// Designer 0 = team leader (system), 1 = MEMS engineer, 2 = circuit designer.

object system {
    property req-resolution : interval(0.1, 10)  units "kPa" init 1.0;
    property req-range      : interval(100, 1500) units "kPa" init 500;
    property req-yield      : interval(0.3, 1.0) init 0.8;
    property req-power      : interval(1, 100)   units "mW" init 30;
    property req-area       : interval(1, 20)    units "mm2" init 8;
    property req-signal     : interval(10, 200)  init 60;
    property sys-noise      : interval(0.01, 20) units "fF";
    property sys-res        : interval(0.05, 20) units "kPa";
    property sys-yield      : interval(0.3, 1.0);
}

object sensor {
    property s-kcap  : interval(1, 20) init 8;
    property s-area  : interval(0.5, 6)    units "mm2";
    property s-gap   : interval(0.5, 5)    units "um";
    property s-thick : interval(2, 20)     units "um";
    property s-cap   : interval(0.5, 30)   units "pF";
    property s-sens  : interval(0.05, 10)  units "fF/kPa";
    property s-range : interval(100, 1500) units "kPa";
    property s-noise : interval(0.05, 5)   units "fF";
    property s-yield : interval(0.5, 0.995);
    property s-drive : interval(1, 20)     units "V";
}

object interface {
    property i-kgain : interval(1, 20) init 5;
    property i-gain  : interval(1, 200)  units "mV/fF";
    property i-noise : interval(0.02, 5) units "fF";
    property i-bits  : set(8, 10, 12, 14, 16);
    property i-power : interval(1, 60)   units "mW";
    property i-area  : interval(0.5, 6)  units "mm2";
    property i-vref  : interval(0.5, 5)  units "V";
}

// --- sensor-internal constraints (MEMS engineer) -------------------------
constraint CapArea:    sensor.s-cap <= sensor.s-kcap * sensor.s-area / sensor.s-gap
    monotonic increasing in sensor.s-area, decreasing in sensor.s-cap;
constraint SensCap:    sensor.s-sens <= sensor.s-cap / 4;
constraint RangeThick: sensor.s-range <= 120 * sensor.s-thick;
constraint RangeGap:   sensor.s-range <= 400 * sensor.s-gap;
constraint SensThick:  sensor.s-sens <= 44 - 2 * sensor.s-thick
    monotonic decreasing in sensor.s-thick, decreasing in sensor.s-sens;
constraint YieldArea:  sensor.s-yield <= 1.02 - 0.04 * sensor.s-area;
constraint YieldThick: sensor.s-yield <= 0.9 + 0.005 * sensor.s-thick;

// --- interface-internal constraints (circuit designer) -------------------
constraint GainPower: interface.i-gain <= interface.i-kgain * interface.i-power;
constraint NoiseGain: interface.i-noise >= 0.5 - 0.002 * interface.i-gain;
constraint AreaBits:  interface.i-area >= 0.25 + 0.05 * interface.i-bits;
constraint PowerBits: interface.i-power >= 0.75 * interface.i-bits;

// --- system / cross-subsystem constraints (leader) -----------------------
constraint TotalNoise: system.sys-noise >= sensor.s-noise + interface.i-noise;
constraint Resolution: system.sys-res >= system.sys-noise / sensor.s-sens;
constraint MeetResolution: system.sys-res <= system.req-resolution;
constraint MeetRange:  sensor.s-range >= system.req-range;
constraint SysYield:   system.sys-yield <= sensor.s-yield - 0.02;
constraint MeetYield:  system.sys-yield >= system.req-yield;
constraint MeetPower:  interface.i-power <= system.req-power;
constraint MeetArea:   sensor.s-area + interface.i-area <= system.req-area;
constraint SenseGain:  interface.i-gain * sensor.s-sens >= system.req-signal
    monotonic increasing in interface.i-gain, increasing in sensor.s-sens;
constraint VrefDrive:  interface.i-vref <= sensor.s-drive / 4;

// --- problem hierarchy ----------------------------------------------------
problem sensing-system {
    outputs: system.sys-noise, system.sys-res, system.sys-yield;
    constraints: TotalNoise, Resolution, MeetResolution, MeetRange,
                 SysYield, MeetYield, MeetPower, MeetArea, SenseGain,
                 VrefDrive;
    designer 0;
}
problem pressure-sensor under sensing-system {
    outputs: sensor.s-area, sensor.s-gap, sensor.s-thick, sensor.s-cap,
             sensor.s-sens, sensor.s-range, sensor.s-noise, sensor.s-yield,
             sensor.s-drive;
    constraints: CapArea, SensCap, RangeThick, RangeGap, SensThick,
                 YieldArea, YieldThick;
    designer 1;
}
problem interface-circuit under sensing-system {
    outputs: interface.i-gain, interface.i-noise, interface.i-bits,
             interface.i-power, interface.i-area, interface.i-vref;
    constraints: GainPower, NoiseGain, AreaBits, PowerBits;
    designer 2;
}
"#;

/// Compiles the sensing-system scenario.
///
/// # Panics
///
/// Panics only if the embedded DDDL source is invalid, which the crate's
/// tests rule out.
pub fn sensing_system() -> CompiledScenario {
    compile_source(SENSING_DDDL).expect("embedded sensing-system DDDL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{propagate, PropagationConfig, Value};
    use adpm_core::{DpmConfig, Operation};

    #[test]
    fn network_matches_paper_reported_size() {
        let s = sensing_system();
        // "the entire network contains up to 26 properties and 21
        // constraints, most of them linear and monotonic"
        assert_eq!(s.network().property_count(), 26);
        assert_eq!(s.network().constraint_count(), 21);
    }

    #[test]
    fn has_cross_subsystem_constraints() {
        let s = sensing_system();
        let cross = s
            .network()
            .constraint_ids()
            .filter(|cid| s.network().is_cross_object(*cid))
            .count();
        assert!(cross >= 4, "expected several cross-object constraints, got {cross}");
        assert!(s.network().is_cross_object(s.constraint("MeetArea").unwrap()));
        assert!(s.network().is_cross_object(s.constraint("SenseGain").unwrap()));
    }

    #[test]
    fn initial_propagation_finds_no_conflict() {
        let s = sensing_system();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        // Propagation over the initial requirements must leave a non-empty
        // feasible region everywhere (the scenario is solvable).
        let mut net = dpm.network().clone();
        let out = propagate(&mut net, &PropagationConfig::default());
        assert!(out.conflicts.is_empty(), "conflicts: {:?}", out.conflicts);
        for pid in net.property_ids() {
            assert!(
                !net.feasible(pid).is_empty(),
                "{} has empty feasible set",
                net.property(pid).name()
            );
        }
        // And the DPM builds with three designers and three problems.
        assert_eq!(dpm.designers().len(), 3);
        assert_eq!(dpm.problems().len(), 3);
        let _ = dpm.problems_mut();
    }

    #[test]
    fn known_good_assignment_completes_the_design() {
        let s = sensing_system();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        let d = dpm.designers().to_vec();
        let top = dpm.problems().root().unwrap();
        let sensor = dpm.problems().problem(top).children()[0];
        let interface = dpm.problems().problem(top).children()[1];

        let assignments: Vec<(&str, &str, f64, adpm_core::ProblemId, adpm_core::DesignerId)> = vec![
            ("sensor", "s-area", 4.0, sensor, d[1]),
            ("sensor", "s-gap", 2.5, sensor, d[1]),
            ("sensor", "s-thick", 5.0, sensor, d[1]),
            ("sensor", "s-cap", 10.0, sensor, d[1]),
            ("sensor", "s-sens", 2.5, sensor, d[1]),
            ("sensor", "s-range", 600.0, sensor, d[1]),
            ("sensor", "s-noise", 0.3, sensor, d[1]),
            ("sensor", "s-yield", 0.85, sensor, d[1]),
            ("sensor", "s-drive", 10.0, sensor, d[1]),
            ("interface", "i-gain", 30.0, interface, d[2]),
            ("interface", "i-noise", 0.5, interface, d[2]),
            ("interface", "i-bits", 12.0, interface, d[2]),
            ("interface", "i-power", 20.0, interface, d[2]),
            ("interface", "i-area", 1.0, interface, d[2]),
            ("interface", "i-vref", 1.0, interface, d[2]),
            ("system", "sys-noise", 0.9, top, d[0]),
            ("system", "sys-res", 0.5, top, d[0]),
            ("system", "sys-yield", 0.8, top, d[0]),
        ];
        for (obj, name, value, problem, designer) in assignments {
            let pid = s.property(obj, name).unwrap();
            dpm.execute(Operation::assign(designer, problem, pid, Value::number(value)))
                .unwrap_or_else(|e| panic!("binding {obj}.{name}={value}: {e}"));
        }
        assert!(
            dpm.known_violations().is_empty(),
            "violations: {:?}",
            dpm.known_violations()
                .iter()
                .map(|c| dpm.network().constraint(*c).name().to_owned())
                .collect::<Vec<_>>()
        );
        assert!(dpm.design_complete());
    }

    #[test]
    fn requirements_are_bound_at_start() {
        let s = sensing_system();
        let dpm = s.build_dpm(DpmConfig::conventional());
        for name in ["req-resolution", "req-range", "req-yield", "req-power", "req-area"] {
            let pid = s.property("system", name).unwrap();
            assert!(dpm.network().is_bound(pid), "{name} should be init-bound");
        }
    }

    #[test]
    fn mostly_linear_and_monotonic() {
        // Count constraints with nonlinear expressions (div/mul between
        // variables, sqrt, ...) — the paper says "most of them linear".
        let s = sensing_system();
        let net = s.network();
        let nonlinear = net
            .constraint_ids()
            .filter(|cid| {
                let c = net.constraint(*cid);
                let gap = c.gap();
                // A constraint is non-linear here if its second derivative
                // w.r.t. any argument is non-zero somewhere; approximate by
                // checking the symbolic first derivative is non-constant.
                c.arguments().iter().any(|pid| {
                    !matches!(gap.diff(*pid).simplified(), adpm_constraint::Expr::Const(_))
                })
            })
            .count();
        assert!(
            nonlinear <= 6,
            "expected mostly linear constraints, found {nonlinear} nonlinear"
        );
    }
}
