//! The §2.4 walkthrough: team-based design of a MEMS-based wireless
//! receiver front-end, reduced to the LNA+Mixer / MEMS-filter interplay the
//! paper uses to demonstrate the three heuristics (Figs. 2–4).
//!
//! The story this scenario supports:
//!
//! 1. the device engineer sets the filter beam length to 13 µm — the
//!    frequency-inductor's feasible subspace shrinks to ≈ (0.17, 0.5) µH
//!    (Fig. 2), making it the *smallest-feasible-subspace* target;
//! 2. the circuit designer binds the inductor (0.2 µH, no conflict) and
//!    sizes the differential pair using the `β` view (Fig. 3);
//! 3. the team leader tightens the gain and input-impedance requirements —
//!    two violations appear, both connected to `Diff-pair-W`
//!    (`α = 2`, Fig. 4), with *increase* as the majority repair direction;
//! 4. one re-sizing of the differential pair fixes both violations.

use adpm_dddl::{compile_source, CompiledScenario};

/// DDDL source for the walkthrough scenario.
pub const WALKTHROUGH_DDDL: &str = r#"
// §2.4 walkthrough: LNA+Mixer and MEMS filter designed concurrently.
// Designer 0 = team leader, 1 = circuit designer, 2 = device engineer.

object system {
    property req-sys-gain : interval(10, 60) units "dB" init 24;
    property req-zerr     : interval(10, 80) units "ohm" init 50;
    property req-power    : interval(50, 400) units "mW" init 200;
}

object "LNA+Mixer" {
    property Diff-pair-W : interval(0.5, 10) units "um"
        levels [Transistor, Geometry];
    property Freq-ind    : interval(0.05, 0.5) units "uH"
        levels [Transistor, Geometry];
    property LNA-gain    : interval(0, 60) units "dB" levels [Geometry];
    property LNA-power   : interval(20, 200) units "mW" levels [Geometry];
    property LNA-Zerr    : interval(5, 80) units "ohm" levels [Geometry];
}

object Filter {
    property beam-len : interval(5, 30) units "um";
    property flt-loss : interval(1, 25) units "dB";
}

// The gain the differential pair can deliver net of filter loss must meet
// the system requirement (cross-subsystem: this is the "global gain
// requirement" both designers worry about).
constraint TotalGain:
    20 * sqrt(2 * "LNA+Mixer".Diff-pair-W) - Filter.flt-loss >= system.req-sys-gain
    monotonic increasing in "LNA+Mixer".Diff-pair-W,
              decreasing in Filter.flt-loss;
constraint GainDef: "LNA+Mixer".LNA-gain <= 20 * sqrt(2 * "LNA+Mixer".Diff-pair-W);
constraint ZinReq: 110 / "LNA+Mixer".Diff-pair-W <= system.req-zerr
    monotonic increasing in "LNA+Mixer".Diff-pair-W;
constraint ZerrDef: "LNA+Mixer".LNA-Zerr >= 110 / "LNA+Mixer".Diff-pair-W;
constraint PowerW: "LNA+Mixer".LNA-power >= 20 * "LNA+Mixer".Diff-pair-W;
constraint PowerReq: "LNA+Mixer".LNA-power <= system.req-power;
constraint IndFc: "LNA+Mixer".Freq-ind >= Filter.beam-len / 70;
constraint FilterLoss: Filter.flt-loss >= 32.12 - Filter.beam-len;

problem front-end {
    constraints: TotalGain, ZinReq, IndFc;
    designer 0;
}
problem analog under front-end {
    outputs: "LNA+Mixer".Diff-pair-W, "LNA+Mixer".Freq-ind,
             "LNA+Mixer".LNA-gain, "LNA+Mixer".LNA-power,
             "LNA+Mixer".LNA-Zerr;
    constraints: GainDef, ZerrDef, PowerW, PowerReq;
    designer 1;
}
problem mems-filter under front-end {
    outputs: Filter.beam-len, Filter.flt-loss;
    constraints: FilterLoss;
    designer 2;
}
"#;

/// Compiles the walkthrough scenario.
///
/// # Panics
///
/// Panics only if the embedded DDDL source is invalid, which the crate's
/// tests rule out.
pub fn lna_walkthrough() -> CompiledScenario {
    compile_source(WALKTHROUGH_DDDL).expect("embedded walkthrough DDDL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{HelpsDirection, Value};
    use adpm_core::{DpmConfig, Operation};

    /// Replays the paper's §2.4 narrative end to end and checks every
    /// intermediate observation the paper reports.
    #[test]
    fn walkthrough_story_plays_out() {
        let s = lna_walkthrough();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        let d = dpm.designers().to_vec();
        let top = dpm.problems().root().unwrap();
        let analog = dpm.problems().problem(top).children()[0];
        let filter = dpm.problems().problem(top).children()[1];

        let beam_len = s.property("Filter", "beam-len").unwrap();
        let flt_loss = s.property("Filter", "flt-loss").unwrap();
        let freq_ind = s.property("LNA+Mixer", "Freq-ind").unwrap();
        let w = s.property("LNA+Mixer", "Diff-pair-W").unwrap();
        let req_gain = s.property("system", "req-sys-gain").unwrap();
        let req_zerr = s.property("system", "req-zerr").unwrap();

        // 1. Device engineer adjusts the beam length to 13 µm and completes
        //    an initial filter version.
        dpm.execute(Operation::assign(d[2], filter, beam_len, Value::number(13.0)))
            .unwrap();
        dpm.execute(Operation::assign(d[2], filter, flt_loss, Value::number(19.5)))
            .unwrap();

        // Fig. 2: the inductor's feasible subspace is now ≈ (0.186, 0.5) µH.
        let ind = dpm.network().feasible(freq_ind).enclosing_interval().unwrap();
        assert!((ind.lo() - 13.0 / 70.0).abs() < 1e-6, "ind = {ind}");
        assert!((ind.hi() - 0.5).abs() < 1e-9);

        // The inductor has the smallest relative feasible subspace among the
        // circuit designer's unbound outputs — the §2.3.1 heuristic target.
        let report = dpm.heuristics().unwrap();
        let ranked = report.rank_by_smallest_feasible(&[w, freq_ind]);
        assert_eq!(ranked[0], freq_ind);

        // 2. Circuit designer binds the inductor at 0.2 µH: no conflict.
        dpm.execute(Operation::assign(d[1], analog, freq_ind, Value::number(0.2)))
            .unwrap();
        assert!(dpm.known_violations().is_empty());

        // Fig. 3: Diff-pair-W appears in several constraints (power,
        // impedance, gain) — β ≥ 3.
        let report = dpm.heuristics().unwrap();
        assert!(report.insight(w).beta >= 3, "beta = {}", report.insight(w).beta);

        // Circuit designer sizes the differential pair at the small end to
        // save power, then completes the derived outputs.
        dpm.execute(Operation::assign(d[1], analog, w, Value::number(3.0)))
            .unwrap();
        assert!(dpm.known_violations().is_empty());

        // 3. The team leader tightens the gain requirement and the input
        //    impedance requirement — both TotalGain and ZinReq break, and
        //    both involve Diff-pair-W.
        dpm.execute(Operation::assign(d[0], top, req_gain, Value::number(30.0)))
            .unwrap();
        dpm.execute(Operation::assign(d[0], top, req_zerr, Value::number(35.0)))
            .unwrap();
        let violated = dpm.known_violations();
        assert_eq!(violated.len(), 2, "expected 2 violations, got {violated:?}");

        // Fig. 4: α(Diff-pair-W) = 2 and the repair direction is "increase".
        let report = dpm.heuristics().unwrap();
        let insight = report.insight(w);
        assert_eq!(insight.alpha, 2);
        assert_eq!(insight.repair_direction, Some(HelpsDirection::Up));
        assert_eq!(insight.repair_support, 2);

        // 4. One re-sizing to 3.5 µm fixes both violations in a single
        //    iteration, exactly as in the paper.
        dpm.execute(
            Operation::assign(d[1], analog, w, Value::number(3.5)).with_repairs(violated),
        )
        .unwrap();
        assert!(dpm.known_violations().is_empty(), "both violations fixed");
    }

    #[test]
    fn scenario_compiles_with_expected_shape() {
        let s = lna_walkthrough();
        assert_eq!(s.network().property_count(), 10);
        assert_eq!(s.network().constraint_count(), 8);
        assert_eq!(s.designer_count(), 3);
        // The quoted object name with '+' survives the pipeline.
        assert!(s.property("LNA+Mixer", "Diff-pair-W").is_some());
    }

    #[test]
    fn cross_subsystem_constraints_drive_spins() {
        let s = lna_walkthrough();
        assert!(s.network().is_cross_object(s.constraint("TotalGain").unwrap()));
        assert!(s.network().is_cross_object(s.constraint("IndFc").unwrap()));
        assert!(!s.network().is_cross_object(s.constraint("PowerW").unwrap()));
    }
}
