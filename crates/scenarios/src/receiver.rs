//! The MEMS-based wireless receiver front-end design case (paper §3.2,
//! second case).
//!
//! Mixed-signal circuitry (LNA + mixer) and a MEMS channel-selection filter
//! are designed concurrently, with constraints on channel bandwidth, system
//! gain, input impedance, frequency-selection precision, and power
//! consumption. Most constraints are non-linear, making this the "harder"
//! case. The network holds 32 properties and 30 constraints (paper: "up to
//! 35 properties and 30 constraints").
//!
//! The system-gain requirement is parameterizable
//! ([`wireless_receiver_with_gain`]) to support the paper's Fig. 10
//! specification-tightness sweep.

use adpm_dddl::{compile_source, CompiledScenario};

/// Default system-gain requirement (linear voltage gain).
pub const DEFAULT_GAIN_REQUIREMENT: f64 = 220.0;

/// Builds the receiver DDDL source with the given system-gain requirement.
pub fn receiver_dddl(req_gain: f64) -> String {
    format!(
        r#"
// MEMS-based wireless receiver front-end.
// Designer 0 = team leader (system), 1 = analog circuit designer,
// 2 = MEMS device engineer.

object system {{
    property req-gain  : interval(10, 1000) init {req_gain};
    property req-power : interval(50, 500)  units "mW"  init 200;
    property req-zin   : interval(10, 100)  units "ohm" init 50;
    property req-bw    : interval(0.5, 10)  units "MHz" init 2;
    property req-fc    : interval(50, 300)  units "MHz" init 100;
    property req-prec  : interval(0.05, 5)  units "%"   init 0.5;
    property req-nf    : interval(1, 30)    units "dB"  init 6;
    property sys-gain  : interval(0.1, 1000);
    property sys-power : interval(10, 500)  units "mW";
    property sys-nf    : interval(0.5, 30)  units "dB";
}}

object lna-mixer {{
    property diff-pair-w : interval(0.5, 10)  units "um"
        levels [Transistor, Geometry];
    property freq-ind    : interval(0.05, 0.5) units "uH"
        levels [Transistor, Geometry];
    property bias-i      : interval(0.1, 10)  units "mA";
    property lna-gain    : interval(1, 300);
    property lna-power   : interval(10, 300)  units "mW";
    property lna-zin     : interval(10, 200)  units "ohm";
    property lna-nf      : interval(0.5, 15)  units "dB";
    property mix-gain    : interval(0.2, 10);
    property mix-power   : interval(5, 100)   units "mW";
    property mix-lo      : interval(0.1, 2)   units "V";
    property mix-nf      : interval(1, 20)    units "dB";
    property load-r      : interval(0.1, 10)  units "kohm";
}}

object filter {{
    property beam-len   : interval(5, 30)   units "um";
    property beam-w     : interval(0.5, 4)  units "um";
    property beam-thick : interval(0.5, 4)  units "um";
    property n-res      : set(1, 2, 3, 4);
    property flt-fc     : interval(50, 300) units "MHz";
    property flt-bw     : interval(0.5, 10) units "MHz";
    property flt-loss   : interval(1.01, 10);
    property flt-q      : interval(50, 5000);
    property flt-prec   : interval(0.05, 5) units "%";
    property drive-v    : interval(1, 40)   units "V";
}}

// --- circuit-internal constraints (analog designer) ----------------------
constraint GainBias:  lna-mixer.lna-gain <= 30 * sqrt(lna-mixer.diff-pair-w * lna-mixer.bias-i)
    monotonic increasing in lna-mixer.diff-pair-w, increasing in lna-mixer.bias-i;
constraint PowerBias: lna-mixer.lna-power >= 25 * lna-mixer.bias-i;
constraint ZinW:      lna-mixer.lna-zin * sqrt(lna-mixer.diff-pair-w) <= 160;
constraint ZinInd:    lna-mixer.lna-zin >= 100 * lna-mixer.freq-ind;
constraint NfBias:    lna-mixer.lna-nf >= 6 / sqrt(lna-mixer.bias-i);
constraint MixGainLo: lna-mixer.mix-gain <= 5 * sqrt(lna-mixer.mix-lo);
constraint MixPowerLo: lna-mixer.mix-power >= 30 * lna-mixer.mix-lo ^ 2;
constraint IndGain:   lna-mixer.lna-gain <= 400 * lna-mixer.freq-ind;
constraint LoadGain:  lna-mixer.lna-gain <= 40 * lna-mixer.load-r;
constraint PowerW:    lna-mixer.lna-power >= 8 * lna-mixer.diff-pair-w;

// --- filter-internal constraints (device engineer) -----------------------
constraint FcLenHi: filter.flt-fc <= 40000 * filter.beam-w / filter.beam-len ^ 2;
constraint FcLenLo: filter.flt-fc >= 20000 * filter.beam-w / filter.beam-len ^ 2;
constraint QThick:  filter.flt-q <= 1500 * filter.beam-thick;
constraint BwQ:     filter.flt-bw * filter.flt-q >= 10 * filter.flt-fc;
constraint LossN:   filter.flt-loss >= 1 + 0.3 * filter.n-res
    monotonic decreasing in filter.n-res, increasing in filter.flt-loss;
constraint SelN:    filter.flt-bw >= 7 / filter.n-res;
constraint PrecDrive: filter.flt-prec >= 10 / filter.drive-v;
constraint PrecLen:   filter.flt-prec >= 4 / filter.beam-len;
constraint DriveThick: filter.drive-v <= 12 * filter.beam-thick;
constraint LossQ:     filter.flt-loss >= 200 / filter.flt-q;

// --- system / cross-subsystem constraints (leader) -----------------------
constraint SysGain:  system.sys-gain <= lna-mixer.lna-gain * lna-mixer.mix-gain / filter.flt-loss;
constraint MeetGain: system.sys-gain >= system.req-gain;
constraint SysPower: system.sys-power >= lna-mixer.lna-power + lna-mixer.mix-power + 0.5 * filter.drive-v;
constraint MeetPower: system.sys-power <= system.req-power;
constraint MeetZin:  lna-mixer.lna-zin >= system.req-zin;
constraint MeetFc:   abs(filter.flt-fc - system.req-fc) <= 5;
constraint MeetBw:   filter.flt-bw <= system.req-bw;
constraint MeetPrec: filter.flt-prec <= system.req-prec;
constraint SysNf:    system.sys-nf >= lna-mixer.lna-nf + lna-mixer.mix-nf / lna-mixer.lna-gain;
constraint MeetNf:   system.sys-nf <= system.req-nf;

// --- problem hierarchy ----------------------------------------------------
problem receiver {{
    outputs: system.sys-gain, system.sys-power, system.sys-nf;
    constraints: SysGain, MeetGain, SysPower, MeetPower, MeetZin,
                 MeetFc, MeetBw, MeetPrec, SysNf, MeetNf;
    designer 0;
}}
problem analog-front-end under receiver {{
    outputs: lna-mixer.diff-pair-w, lna-mixer.freq-ind, lna-mixer.bias-i,
             lna-mixer.lna-gain, lna-mixer.lna-power, lna-mixer.lna-zin,
             lna-mixer.lna-nf, lna-mixer.mix-gain, lna-mixer.mix-power,
             lna-mixer.mix-lo, lna-mixer.mix-nf, lna-mixer.load-r;
    constraints: GainBias, PowerBias, ZinW, ZinInd, NfBias, MixGainLo,
                 MixPowerLo, IndGain, LoadGain, PowerW;
    designer 1;
}}
problem mems-filter under receiver {{
    outputs: filter.beam-len, filter.beam-w, filter.beam-thick, filter.n-res,
             filter.flt-fc, filter.flt-bw, filter.flt-loss, filter.flt-q,
             filter.flt-prec, filter.drive-v;
    constraints: FcLenHi, FcLenLo, QThick, BwQ, LossN, SelN, PrecDrive,
                 PrecLen, DriveThick, LossQ;
    designer 2;
}}
"#
    )
}

/// Compiles the receiver scenario with the default gain requirement.
///
/// # Panics
///
/// Panics only if the embedded DDDL source is invalid, which the crate's
/// tests rule out.
pub fn wireless_receiver() -> CompiledScenario {
    wireless_receiver_with_gain(DEFAULT_GAIN_REQUIREMENT)
}

/// Compiles the receiver scenario with a custom system-gain requirement —
/// the knob the paper's Fig. 10 sweeps.
///
/// # Panics
///
/// Panics if `req_gain` lies outside the declared requirement range
/// `[10, 1000]`.
pub fn wireless_receiver_with_gain(req_gain: f64) -> CompiledScenario {
    assert!(
        (10.0..=1000.0).contains(&req_gain),
        "req_gain {req_gain} outside the declared requirement range"
    );
    compile_source(&receiver_dddl(req_gain)).expect("embedded receiver DDDL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_constraint::{propagate, PropagationConfig, Value};
    use adpm_core::{DpmConfig, Operation};

    #[test]
    fn network_matches_paper_reported_size() {
        let s = wireless_receiver();
        // "up to 35 properties and 30 constraints exist, most of which are
        // non-linear"
        assert_eq!(s.network().property_count(), 32);
        assert_eq!(s.network().constraint_count(), 30);
        assert!(s.network().property_count() <= 35);
    }

    #[test]
    fn mostly_nonlinear() {
        let s = wireless_receiver();
        let net = s.network();
        let nonlinear = net
            .constraint_ids()
            .filter(|cid| {
                let c = net.constraint(*cid);
                let gap = c.gap();
                gap.has_kink()
                    || c.arguments().iter().any(|pid| {
                        !matches!(gap.diff(*pid).simplified(), adpm_constraint::Expr::Const(_))
                    })
            })
            .count();
        assert!(
            nonlinear * 2 >= net.constraint_count(),
            "expected mostly nonlinear constraints, found {nonlinear}/30"
        );
    }

    #[test]
    fn has_cross_subsystem_constraints() {
        let s = wireless_receiver();
        for name in ["SysGain", "SysPower", "MeetZin", "MeetFc", "SysNf"] {
            assert!(
                s.network().is_cross_object(s.constraint(name).unwrap()),
                "{name} should couple subsystems"
            );
        }
    }

    #[test]
    fn initial_propagation_finds_no_conflict() {
        let s = wireless_receiver();
        let dpm = s.build_dpm(DpmConfig::adpm());
        let mut net = dpm.network().clone();
        let out = propagate(&mut net, &PropagationConfig::default());
        assert!(out.conflicts.is_empty(), "conflicts: {:?}", out.conflicts);
        for pid in net.property_ids() {
            assert!(
                !net.feasible(pid).is_empty(),
                "{} has empty feasible set",
                net.property(pid).name()
            );
        }
    }

    #[test]
    fn known_good_assignment_completes_the_design() {
        let s = wireless_receiver();
        let mut dpm = s.build_dpm(DpmConfig::adpm());
        let d = dpm.designers().to_vec();
        let top = dpm.problems().root().unwrap();
        let analog = dpm.problems().problem(top).children()[0];
        let filter = dpm.problems().problem(top).children()[1];

        let assignments: Vec<(&str, &str, f64, adpm_core::ProblemId, adpm_core::DesignerId)> = vec![
            ("lna-mixer", "bias-i", 5.0, analog, d[1]),
            ("lna-mixer", "diff-pair-w", 10.0, analog, d[1]),
            ("lna-mixer", "freq-ind", 0.5, analog, d[1]),
            ("lna-mixer", "load-r", 6.0, analog, d[1]),
            ("lna-mixer", "lna-gain", 200.0, analog, d[1]),
            ("lna-mixer", "lna-power", 130.0, analog, d[1]),
            ("lna-mixer", "lna-zin", 50.3, analog, d[1]),
            ("lna-mixer", "lna-nf", 3.0, analog, d[1]),
            ("lna-mixer", "mix-lo", 1.2, analog, d[1]),
            ("lna-mixer", "mix-gain", 5.0, analog, d[1]),
            ("lna-mixer", "mix-power", 45.0, analog, d[1]),
            ("lna-mixer", "mix-nf", 5.0, analog, d[1]),
            ("filter", "beam-w", 1.5, filter, d[2]),
            ("filter", "beam-len", 25.0, filter, d[2]),
            ("filter", "beam-thick", 2.0, filter, d[2]),
            ("filter", "n-res", 4.0, filter, d[2]),
            ("filter", "flt-fc", 96.0, filter, d[2]),
            ("filter", "flt-q", 1000.0, filter, d[2]),
            ("filter", "flt-bw", 2.0, filter, d[2]),
            ("filter", "flt-loss", 2.2, filter, d[2]),
            ("filter", "drive-v", 20.0, filter, d[2]),
            ("filter", "flt-prec", 0.5, filter, d[2]),
            ("system", "sys-gain", 250.0, top, d[0]),
            ("system", "sys-power", 190.0, top, d[0]),
            ("system", "sys-nf", 3.5, top, d[0]),
        ];
        for (obj, name, value, problem, designer) in assignments {
            let pid = s.property(obj, name).unwrap();
            dpm.execute(Operation::assign(designer, problem, pid, Value::number(value)))
                .unwrap_or_else(|e| panic!("binding {obj}.{name}={value}: {e}"));
        }
        assert!(
            dpm.known_violations().is_empty(),
            "violations: {:?}",
            dpm.known_violations()
                .iter()
                .map(|c| dpm.network().constraint(*c).name().to_owned())
                .collect::<Vec<_>>()
        );
        assert!(dpm.design_complete());
    }

    #[test]
    fn gain_requirement_is_parameterizable() {
        let loose = wireless_receiver_with_gain(20.0);
        let tight = wireless_receiver_with_gain(300.0);
        let gid = loose.property("system", "req-gain").unwrap();
        let check = |s: &adpm_dddl::CompiledScenario, expected: f64| {
            let dpm = s.build_dpm(DpmConfig::adpm());
            let v = dpm.network().assignment(gid).unwrap().as_number().unwrap();
            assert_eq!(v, expected);
        };
        check(&loose, 20.0);
        check(&tight, 300.0);
    }

    #[test]
    #[should_panic(expected = "outside the declared requirement range")]
    fn out_of_range_gain_panics() {
        let _ = wireless_receiver_with_gain(5000.0);
    }

    #[test]
    fn tight_gain_narrows_feasible_space() {
        // Tightening the gain requirement must narrow the feasible region of
        // the gain chain (the premise of the Fig. 10 sweep).
        let loose = wireless_receiver_with_gain(50.0);
        let tight = wireless_receiver_with_gain(400.0);
        let measure = |s: &adpm_dddl::CompiledScenario| {
            let dpm = s.build_dpm(DpmConfig::adpm());
            let mut net = dpm.network().clone();
            propagate(&mut net, &PropagationConfig::default());
            let g = s.property("system", "sys-gain").unwrap();
            net.feasible(g)
                .relative_size(net.property(g).initial_domain())
        };
        assert!(measure(&tight) < measure(&loose));
    }
}
