//! A scalable synthetic design case: a signal pipeline of `N` concurrently
//! designed stages.
//!
//! The paper's conclusions call for evaluating "other types of problems";
//! this generator produces a family of problems whose *team size and
//! cross-subsystem coupling grow with `N`*: each stage is one designer's
//! subsystem (gain / power / noise / impedance trade-offs), neighbouring
//! stages must be impedance-matched, and system-wide gain, power, and
//! noise budgets couple everyone. Late conflict detection hurts more as
//! `N` grows — the effect ADPM is designed to remove — so this family
//! drives the `scaling_teams` bench.

use adpm_dddl::{compile_source, CompiledScenario};
use std::fmt::Write as _;

/// Maximum pipeline length the generator accepts (the DDDL source and the
/// designer count grow linearly; this bound keeps misuse obvious).
pub const MAX_PIPELINE_STAGES: usize = 16;

/// Generates the DDDL source for an `n`-stage pipeline.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds [`MAX_PIPELINE_STAGES`].
pub fn pipeline_dddl(n: usize) -> String {
    assert!(
        (1..=MAX_PIPELINE_STAGES).contains(&n),
        "pipeline stages must be in 1..={MAX_PIPELINE_STAGES}, got {n}"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Synthetic {n}-stage signal pipeline: designer 0 leads, designers 1..{n} own one stage each."
    );

    // Requirements scale with the number of stages.
    let req_gain = 2.5f64.powi(n as i32);
    let req_power = 18.0 * n as f64;
    let req_noise = 1.5 * n as f64;
    let _ = writeln!(
        out,
        "object system {{\n    property req-gain  : interval(1, 1e7) init {req_gain};\n    property req-power : interval(1, 1000) init {req_power};\n    property req-noise : interval(0.1, 100) init {req_noise};\n}}"
    );

    for i in 0..n {
        let _ = writeln!(
            out,
            "object stage-{i} {{\n    property gain  : interval(1, 10);\n    property power : interval(1, 50) units \"mW\";\n    property noise : interval(0.1, 5);\n    property zin   : interval(10, 100) units \"ohm\";\n    property zout  : interval(10, 100) units \"ohm\";\n}}"
        );
    }

    // Stage-internal trade-offs (one designer each).
    for i in 0..n {
        let _ = writeln!(
            out,
            "constraint GainPower{i}: stage-{i}.gain <= stage-{i}.power / 2\n    monotonic decreasing in stage-{i}.gain, increasing in stage-{i}.power;"
        );
        let _ = writeln!(
            out,
            "constraint NoiseGain{i}: stage-{i}.noise >= 2 / stage-{i}.gain;"
        );
    }
    // Neighbour impedance matching (cross-subsystem pair constraints).
    for i in 0..n.saturating_sub(1) {
        let j = i + 1;
        let _ = writeln!(
            out,
            "constraint Match{i}: abs(stage-{i}.zout - stage-{j}.zin) <= 10;"
        );
    }
    // System-wide budgets (cross everything).
    let product = (0..n)
        .map(|i| format!("stage-{i}.gain"))
        .collect::<Vec<_>>()
        .join(" * ");
    let power_sum = (0..n)
        .map(|i| format!("stage-{i}.power"))
        .collect::<Vec<_>>()
        .join(" + ");
    let noise_sum = (0..n)
        .map(|i| format!("stage-{i}.noise"))
        .collect::<Vec<_>>()
        .join(" + ");
    let _ = writeln!(out, "constraint TotalGain: {product} >= system.req-gain;");
    let _ = writeln!(out, "constraint TotalPower: {power_sum} <= system.req-power;");
    let _ = writeln!(out, "constraint TotalNoise: {noise_sum} <= system.req-noise;");

    // Problem hierarchy: the leader owns the system budgets and matching.
    let mut top_constraints: Vec<String> =
        vec!["TotalGain".into(), "TotalPower".into(), "TotalNoise".into()];
    top_constraints.extend((0..n.saturating_sub(1)).map(|i| format!("Match{i}")));
    let _ = writeln!(
        out,
        "problem pipeline {{ constraints: {}; designer 0; }}",
        top_constraints.join(", ")
    );
    for i in 0..n {
        let _ = writeln!(
            out,
            "problem stage-{i}-design under pipeline {{\n    outputs: stage-{i}.gain, stage-{i}.power, stage-{i}.noise, stage-{i}.zin, stage-{i}.zout;\n    constraints: GainPower{i}, NoiseGain{i};\n    designer {};\n}}",
            i + 1
        );
    }
    out
}

/// Compiles an `n`-stage pipeline scenario.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds [`MAX_PIPELINE_STAGES`] (generated DDDL is
/// otherwise always valid).
pub fn pipeline(n: usize) -> CompiledScenario {
    compile_source(&pipeline_dddl(n)).expect("generated pipeline DDDL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpm_core::{DpmConfig, ManagementMode};
    use adpm_teamsim::{run_once, SimulationConfig};

    #[test]
    fn generated_sizes_scale_linearly() {
        for n in [1usize, 3, 6] {
            let s = pipeline(n);
            assert_eq!(s.network().property_count(), 5 * n + 3);
            assert_eq!(s.network().constraint_count(), 2 * n + (n - 1) + 3);
            assert_eq!(s.designer_count() as usize, n + 1);
            assert_eq!(
                s.build_dpm(DpmConfig::adpm()).problems().len(),
                n + 1
            );
        }
    }

    #[test]
    fn budgets_and_matching_are_cross_subsystem() {
        let s = pipeline(3);
        for name in ["TotalGain", "TotalPower", "TotalNoise", "Match0", "Match1"] {
            assert!(
                s.network().is_cross_object(s.constraint(name).unwrap()),
                "{name} should couple subsystems"
            );
        }
        assert!(!s.network().is_cross_object(s.constraint("GainPower1").unwrap()));
    }

    #[test]
    fn pipelines_complete_in_both_modes() {
        for n in [2usize, 4] {
            let s = pipeline(n);
            for mode in [ManagementMode::Adpm, ManagementMode::Conventional] {
                let stats = run_once(&s, SimulationConfig::for_mode(mode, 3));
                assert!(
                    stats.completed,
                    "{n}-stage {mode:?} censored at {} ops",
                    stats.operations
                );
            }
        }
    }

    #[test]
    fn adpm_advantage_holds_on_the_synthetic_family() {
        let s = pipeline(3);
        let mut conv_ops = 0usize;
        let mut adpm_ops = 0usize;
        for seed in 0..6u64 {
            conv_ops += run_once(&s, SimulationConfig::conventional(seed)).operations;
            adpm_ops += run_once(&s, SimulationConfig::adpm(seed)).operations;
        }
        assert!(
            conv_ops > adpm_ops,
            "conventional {conv_ops} <= adpm {adpm_ops}"
        );
    }

    #[test]
    #[should_panic(expected = "pipeline stages must be in 1..=")]
    fn zero_stages_panics() {
        let _ = pipeline(0);
    }

    #[test]
    fn generated_source_round_trips_through_the_pretty_printer() {
        let source = pipeline_dddl(4);
        let ast = adpm_dddl::parse(&source).expect("parses");
        let printed = adpm_dddl::to_source(&ast);
        let reparsed = adpm_dddl::parse(&printed).expect("re-parses");
        assert_eq!(ast, reparsed);
    }
}
