//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external `criterion` dev-dependency is replaced by this in-tree harness
//! implementing the API subset the workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples and reported as the median
//! nanoseconds per iteration on stdout. No statistics files, no plots, no
//! outlier analysis — enough to compare hot paths locally.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// How per-iteration setup output is batched (accepted for API
/// compatibility; this harness always times routines individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark manager: entry point of a bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 100, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benches a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benches a function parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; matches the upstream API).
    pub fn finish(self) {}
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up phase: let the closure run until the budget is spent.
    let mut bencher = Bencher {
        phase: Phase::Warmup {
            deadline: Instant::now() + WARMUP_BUDGET,
        },
        samples: Vec::new(),
    };
    f(&mut bencher);

    // Measurement phase.
    bencher.phase = Phase::Measure {
        deadline: Instant::now() + MEASURE_BUDGET,
        remaining: sample_size,
    };
    bencher.samples.clear();
    f(&mut bencher);

    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "bench {label:<40} median {:>12} ns/iter ({} samples)",
        median, samples.len()
    );
}

#[derive(Debug)]
enum Phase {
    Warmup { deadline: Instant },
    Measure { deadline: Instant, remaining: usize },
}

/// Times the closure handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    phase: Phase,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<u128>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.drive(&mut |n| {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.drive(&mut |n| {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    /// Runs the measured closure (`timed(n)` = time for `n` iterations)
    /// according to the current phase.
    fn drive(&mut self, timed: &mut dyn FnMut(u64) -> Duration) {
        match self.phase {
            Phase::Warmup { deadline } => {
                while Instant::now() < deadline {
                    timed(1);
                }
            }
            Phase::Measure {
                deadline,
                remaining,
            } => {
                // Calibrate so one sample costs roughly 1/sample_size of
                // the budget, with at least one iteration.
                let probe = timed(1).max(Duration::from_nanos(1));
                let per_sample = MEASURE_BUDGET
                    .checked_div(remaining.max(1) as u32)
                    .unwrap_or(Duration::from_millis(1));
                let iters = (per_sample.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
                for _ in 0..remaining {
                    let elapsed = timed(iters);
                    self.samples.push(elapsed.as_nanos() / u128::from(iters));
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
