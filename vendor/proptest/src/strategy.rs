//! The [`Strategy`] trait and its combinators: how test inputs are
//! generated. No shrinking — strategies are pure generators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;
use std::sync::Arc;

/// Maximum redraws for a single filtered value before the strategy gives up
/// (mirrors upstream's local-reject cap).
const MAX_FILTER_TRIES: usize = 4096;

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Discards generated values failing `pred`, redrawing up to a cap.
    ///
    /// `reason` is reported if the cap is exhausted.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Generates an intermediate value, then generates the final value from
    /// the strategy `f` builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps an
    /// inner strategy into a branch case, nested at most `depth` levels.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for upstream
    /// signature compatibility but only `depth` shapes generation here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // Each level flips between bottoming out and nesting deeper, so
            // generated structures vary in depth up to the cap.
            strat = Union::new(vec![base.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable [`Strategy`].
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let value = self.source.gen_value(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted {MAX_FILTER_TRIES} draws: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

/// Uniform choice between strategies of the same value type (the engine
/// behind [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, i32, i64, f64);

/// `&str` regex-like patterns generate matching strings (see
/// [`crate::string`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
