//! Sampling strategies over concrete collections.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy yielding uniformly chosen clones of `options`' elements.
///
/// # Panics
///
/// Panics immediately if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
