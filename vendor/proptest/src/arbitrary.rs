//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`: every value of the type, uniformly where
/// that is meaningful.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain strategy for primitives (uniform over the value space).
#[derive(Debug, Clone, Copy)]
pub struct PrimitiveAny<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = PrimitiveAny<$t>;
            fn arbitrary() -> Self::Strategy {
                PrimitiveAny(std::marker::PhantomData)
            }
        }
        impl Strategy for PrimitiveAny<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    type Strategy = PrimitiveAny<bool>;
    fn arbitrary() -> Self::Strategy {
        PrimitiveAny(std::marker::PhantomData)
    }
}

impl Strategy for PrimitiveAny<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}
