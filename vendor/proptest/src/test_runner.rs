//! The deterministic, non-shrinking test runner behind
//! [`proptest!`](crate::proptest).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for one property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion — the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!` — redraw and retry.
    Reject(String),
}

/// The result type property-test bodies are wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a test body over strategy-generated inputs.
///
/// Generation is seeded from the test's name, so every run of the same test
/// sees the same input sequence (failures reproduce without a persistence
/// file; there is no shrinking).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test name: decouples sibling tests' streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            name,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs `test` against `config.cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// or when `prop_assume!` rejects too many inputs.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let max_rejects = self.config.cases as usize * 64 + 1024;
        let mut completed = 0u32;
        let mut rejects = 0usize;
        while completed < self.config.cases {
            let value = strategy.gen_value(&mut self.rng);
            match test(value) {
                Ok(()) => completed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "{}: prop_assume! rejected {rejects} inputs before {} cases passed",
                            self.name, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{}: property failed on case {} (after {rejects} rejects): {msg}",
                        self.name,
                        completed + 1
                    );
                }
            }
        }
    }
}
