//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Attempt cap when a map's key strategy keeps colliding.
const MAX_MAP_TRIES: usize = 1024;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A strategy for `BTreeMap`s with `size`-many distinct keys from `key` and
/// values from `value`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    assert!(size.start < size.end, "empty btree_map size range");
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let n = rng.gen_range(self.size.clone());
        let mut map = BTreeMap::new();
        let mut tries = 0;
        while map.len() < n && tries < MAX_MAP_TRIES {
            tries += 1;
            map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
        }
        assert!(
            map.len() >= self.size.start,
            "btree_map key strategy too narrow: {} distinct keys after {MAX_MAP_TRIES} draws",
            map.len()
        );
        map
    }
}
