//! Regex-like string generation for `&str` strategies.
//!
//! Supports the subset of regex syntax the workspace's tests use:
//! character classes with ranges (`[a-z0-9_+ ()]`), groups `( ... )`,
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`, literal characters, and the
//! proptest idiom `\PC` ("any non-control character"). Alternation (`|`)
//! and anchors are not supported and panic loudly.

use rand::rngs::StdRng;
use rand::Rng;

/// Cap applied to the unbounded quantifiers `*` and `+`.
const UNBOUNDED_CAP: usize = 8;

/// A parsed pattern element.
#[derive(Debug, Clone)]
enum Node {
    /// A literal character.
    Literal(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// Any non-control character (`\PC`).
    Printable,
    /// A parenthesized subpattern.
    Group(Vec<(Node, Quant)>),
}

/// Repetition bounds `[min, max]` for one node.
#[derive(Debug, Clone, Copy)]
struct Quant {
    min: usize,
    max: usize,
}

const ONCE: Quant = Quant { min: 1, max: 1 };

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let nodes = parse_sequence(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    for (node, quant) in &nodes {
        emit(node, *quant, rng, &mut out);
    }
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<(Node, Quant)> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => break,
            '|' => panic!("unsupported regex alternation in pattern `{pattern}`"),
            '^' | '$' => panic!("unsupported regex anchor in pattern `{pattern}`"),
            _ => {}
        }
        let node = parse_atom(chars, pattern);
        let quant = parse_quant(chars, pattern);
        nodes.push((node, quant));
    }
    nodes
}

fn parse_atom(chars: &mut Chars<'_>, pattern: &str) -> Node {
    match chars.next().expect("non-empty atom") {
        '[' => parse_class(chars, pattern),
        '(' => {
            let inner = parse_sequence(chars, pattern, true);
            match chars.next() {
                Some(')') => Node::Group(inner),
                _ => panic!("unterminated group in pattern `{pattern}`"),
            }
        }
        '\\' => match chars.next() {
            // proptest's `\PC`: any character not in Unicode category C
            // (control); approximated by printable characters below.
            Some('P') => match chars.next() {
                Some('C') => Node::Printable,
                other => panic!("unsupported escape \\P{other:?} in pattern `{pattern}`"),
            },
            Some(c @ ('.' | '+' | '*' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '\\' | '-'
            | '|' | '"')) => Node::Literal(c),
            Some('n') => Node::Literal('\n'),
            Some('t') => Node::Literal('\t'),
            other => panic!("unsupported escape \\{other:?} in pattern `{pattern}`"),
        },
        c => Node::Literal(c),
    }
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Node {
    let mut ranges = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in class, pattern `{pattern}`")),
            Some(c) => c,
            None => panic!("unterminated character class in pattern `{pattern}`"),
        };
        // A `-` between two characters forms a range; elsewhere it is
        // literal.
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // consume '-'
            match lookahead.peek() {
                Some(&end) if end != ']' => {
                    chars.next();
                    chars.next();
                    ranges.push((c, end));
                    continue;
                }
                _ => {}
            }
        }
        ranges.push((c, c));
    }
    assert!(!ranges.is_empty(), "empty character class in pattern `{pattern}`");
    Node::Class(ranges)
}

fn parse_quant(chars: &mut Chars<'_>, pattern: &str) -> Quant {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Quant {
                min: 0,
                max: UNBOUNDED_CAP,
            }
        }
        Some('+') => {
            chars.next();
            Quant {
                min: 1,
                max: UNBOUNDED_CAP,
            }
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    };
                    assert!(min <= max, "bad quantifier {{{body}}} in `{pattern}`");
                    return Quant { min, max };
                }
                body.push(c);
            }
            panic!("unterminated quantifier in pattern `{pattern}`");
        }
        _ => ONCE,
    }
}

fn emit(node: &Node, quant: Quant, rng: &mut StdRng, out: &mut String) {
    let reps = if quant.min == quant.max {
        quant.min
    } else {
        rng.gen_range(quant.min..quant.max + 1)
    };
    for _ in 0..reps {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => out.push(pick_from_ranges(ranges, rng)),
            Node::Printable => out.push(pick_printable(rng)),
            Node::Group(inner) => {
                for (n, q) in inner {
                    emit(n, *q, rng, out);
                }
            }
        }
    }
}

fn pick_from_ranges(ranges: &[(char, char)], rng: &mut StdRng) -> char {
    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
    let span = hi as u32 - lo as u32 + 1;
    char::from_u32(lo as u32 + rng.gen_range(0..span as usize) as u32).unwrap_or(lo)
}

/// Non-control characters: mostly printable ASCII with an occasional
/// multi-byte character to exercise UTF-8 handling.
fn pick_printable(rng: &mut StdRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'Ω', 'λ', '→', '音', '𝛼', 'ß', '¤'];
    if rng.gen_bool(0.9) {
        char::from_u32(rng.gen_range(0x20usize..0x7F) as u32).unwrap_or(' ')
    } else {
        EXOTIC[rng.gen_range(0..EXOTIC.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ident_pattern_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,6}(-[a-z0-9]{1,4}){0,2}", &mut rng);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == '_'
                    || c == '-'),
                "{s}"
            );
        }
    }

    #[test]
    fn bounded_length_class() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = generate("[A-Za-z+ ()0-9]{1,12}", &mut rng);
            let n = s.chars().count();
            assert!((1..=12).contains(&n), "{s:?}");
        }
    }

    #[test]
    fn printable_escape() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let s = generate("\\PC{0,120}", &mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
