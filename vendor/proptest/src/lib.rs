//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external `proptest` dev-dependency is replaced by this in-tree
//! implementation of the subset the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter`, `prop_flat_map`, `prop_recursive`, and `boxed`;
//! * range strategies, tuple strategies, [`Just`](strategy::Just),
//!   regex-like `&str` string strategies, [`collection::vec`],
//!   [`collection::btree_map`], [`sample::select`], and
//!   [`any`](arbitrary::any);
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`] macros;
//! * a deterministic, non-shrinking [`TestRunner`](test_runner::TestRunner).
//!
//! The key behavioural difference from upstream: failing cases are **not
//! shrunk** — the first failing input is reported as-is. Generation is
//! deterministic per test name, so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the workspace's tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]: expands one test fn, recurses on the
/// rest.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::<(), $crate::test_runner::TestCaseError>::Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Picks uniformly between several strategies with the same value type.
/// (Upstream's `weight => strategy` arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case (without failing) when the assumption is
/// false; the runner draws a replacement input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
