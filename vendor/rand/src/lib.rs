//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external `rand` dependency is replaced by this in-tree implementation of
//! the exact API subset the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion;
//! * [`Rng::gen_bool`] / [`Rng::gen_range`] over half-open `usize`, integer
//!   and `f64` ranges.
//!
//! Determinism per seed is the only behavioural contract the workspace
//! relies on (TeamSim replays and the determinism tests depend on it); the
//! streams differ from upstream `rand`'s `StdRng` (ChaCha12), which is fine
//! because no golden file encodes upstream streams.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, mirroring upstream `rand`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny residual
                // bias is irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i32, i64);

macro_rules! impl_int_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                let Some(span) = span.checked_add(1) else {
                    return rng.next_u64() as $t; // full-width range
                };
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sample_range_inclusive!(usize, u64, u32, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed, cheap, and statistically solid
    /// for simulation use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
