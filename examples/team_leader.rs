//! Programmatic scenario assembly — the team leader's job in §2.4:
//! "the leader defines a top-level system design problem, and decomposes
//! it into the analog portion and the MEMS filter". This example builds
//! the design state through the public API (no DDDL), performs the
//! decomposition as a live design *operation*, wires the subproblems, and
//! lets two simulated designers finish the job.
//!
//! Run with: `cargo run -p adpm-examples --bin team_leader`

use adpm_constraint::{
    expr::{cst, var},
    ConstraintNetwork, Domain, Property, Relation,
};
use adpm_core::{DesignProcessManager, DpmConfig, Operation};
use adpm_teamsim::{SimulatedDesigner, SimulationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The leader models the design: properties and constraints.
    let mut net = ConstraintNetwork::new();
    let gain = net.add_property(Property::new("gain", "analog", Domain::interval(1.0, 100.0)))?;
    let power = net.add_property(
        Property::new("power", "analog", Domain::interval(10.0, 300.0)).with_units("mW"),
    )?;
    let beam = net.add_property(
        Property::new("beam-len", "filter", Domain::interval(5.0, 30.0)).with_units("um"),
    )?;
    let loss = net.add_property(Property::new("loss", "filter", Domain::interval(1.0, 25.0)))?;
    let c_gain = net.add_constraint("GainPower", var(gain), Relation::Le, var(power) / cst(3.0))?;
    let c_loss = net.add_constraint("LossBeam", var(loss), Relation::Ge, cst(30.0) - var(beam))?;
    let c_total = net.add_constraint(
        "TotalGain",
        var(gain) - var(loss),
        Relation::Ge,
        cst(20.0),
    )?;

    // 2. The leader defines the top-level problem and decomposes it — a
    //    live design operation, exactly like §2.4's opening move.
    let mut dpm = DesignProcessManager::new(net, DpmConfig::adpm());
    let leader = dpm.add_designer();
    let circuit_designer = dpm.add_designer();
    let device_engineer = dpm.add_designer();
    let top = dpm.problems_mut().add_root("front-end");
    *dpm.problems_mut().problem_mut(top) = dpm
        .problems()
        .problem(top)
        .clone()
        .with_constraints([c_total])
        .with_assignee(leader);
    dpm.initialize();

    let record = dpm.execute(Operation::decompose(leader, top, ["analog", "mems-filter"]))?;
    println!(
        "leader decomposed {top}: {} problems now exist (operation #{})",
        dpm.problems().len(),
        record.sequence
    );
    let analog = dpm.problems().problem(top).children()[0];
    let filter = dpm.problems().problem(top).children()[1];

    // 3. The leader assigns the subproblems to the team.
    *dpm.problems_mut().problem_mut(analog) = dpm
        .problems()
        .problem(analog)
        .clone()
        .with_outputs([gain, power])
        .with_constraints([c_gain])
        .with_assignee(circuit_designer);
    *dpm.problems_mut().problem_mut(filter) = dpm
        .problems()
        .problem(filter)
        .clone()
        .with_outputs([beam, loss])
        .with_constraints([c_loss])
        .with_assignee(device_engineer);
    // Manual wiring bypasses the transition function, so refresh the
    // process state (statuses + heuristics) before handing over.
    dpm.initialize();
    println!(
        "assigned `analog` to {circuit_designer} and `mems-filter` to {device_engineer}\n"
    );

    // 4. Simulated designers take over and drive the process to completion
    //    through the same public API.
    let config = SimulationConfig::adpm(11);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut team: Vec<SimulatedDesigner> = dpm
        .designers()
        .iter()
        .map(|d| SimulatedDesigner::new(*d))
        .collect();
    let mut idle_rounds = 0;
    while !dpm.design_complete() && idle_rounds < 2 && dpm.history().len() < 200 {
        let mut progressed = false;
        for designer in &mut team {
            if let Some(operation) = designer.choose(&dpm, &config, &mut rng) {
                let record = dpm.execute(operation)?;
                designer.observe(&record);
                println!(
                    "op {:>2}: {}  (violations now {})",
                    record.sequence, record.operation, record.violations_after
                );
                progressed = true;
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }

    println!(
        "\ndesign complete: {} after {} operations, {} evaluations, {} spins",
        dpm.design_complete(),
        dpm.history().len(),
        dpm.total_evaluations(),
        dpm.spins()
    );
    assert!(dpm.design_complete());
    Ok(())
}
