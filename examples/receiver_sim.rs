//! Simulates the MEMS-based wireless-receiver design case (paper §3.2)
//! under ADPM with the live statistics window of Fig. 8, then prints the
//! per-operation profile of the finished run (Fig. 7 style, single mode).
//!
//! Run with: `cargo run -p adpm-examples --bin receiver_sim [seed]`

use adpm_scenarios::wireless_receiver;
use adpm_teamsim::report::{profile_chart, stats_window};
use adpm_teamsim::{Simulation, SimulationConfig, StepOutcome};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let scenario = wireless_receiver();
    let mut sim = Simulation::new(&scenario, SimulationConfig::adpm(seed));

    println!("initial state:\n{}", stats_window(&sim));
    loop {
        match sim.step() {
            StepOutcome::Executed(stat) => {
                if stat.violations_found > 0 {
                    println!(
                        "op {:>3} ({:>7}) found {} violation(s){}",
                        stat.index,
                        stat.kind,
                        stat.violations_found,
                        if stat.spin { "  [spin]" } else { "" }
                    );
                }
                if sim.operations().is_multiple_of(10) {
                    println!("\nafter {} operations:\n{}", sim.operations(), stats_window(&sim));
                }
            }
            StepOutcome::Complete => break,
            StepOutcome::Stalled => {
                println!("simulation stalled");
                break;
            }
        }
        if sim.operations() >= sim.config().max_operations {
            break;
        }
    }
    println!("\nfinal state:\n{}", stats_window(&sim));

    let run = sim.run(); // already complete; collects the stats
    println!(
        "{}",
        profile_chart(
            "violations found per operation (ADPM run)",
            &[],
            &run.violations_profile(),
            50,
        )
    );
    println!(
        "completed = {}, operations = {}, evaluations = {} ({} during setup)",
        run.completed, run.operations, run.evaluations, run.setup_evaluations
    );
}
