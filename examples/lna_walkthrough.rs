//! The paper's §2.4 collaborative-design walkthrough, end to end, with the
//! Figs. 2–4 browser views printed at each step:
//!
//! 1. the device engineer sets the MEMS filter's beam length;
//! 2. the circuit designer consults the object browser (Fig. 2), works the
//!    frequency inductor first (smallest feasible subspace), then sizes the
//!    differential pair using the constraint/property browser (Fig. 3);
//! 3. the team leader tightens two requirements — two violations appear,
//!    both connected to `Diff-pair-W` (Fig. 4, `α = 2`);
//! 4. one direction-guided re-sizing fixes both violations.
//!
//! Run with: `cargo run -p adpm-examples --bin lna_walkthrough`

use adpm_core::browse::{conflict_view, constraint_pane, object_browser, property_pane};
use adpm_core::{DpmConfig, Operation};
use adpm_constraint::{HeuristicReport, Value};
use adpm_scenarios::lna_walkthrough;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = lna_walkthrough();
    let mut dpm = scenario.build_dpm(DpmConfig::adpm());
    dpm.initialize();
    let d = dpm.designers().to_vec();
    let top = dpm.problems().root().expect("scenario has a root");
    let analog = dpm.problems().problem(top).children()[0];
    let filter = dpm.problems().problem(top).children()[1];

    let beam_len = scenario.property("Filter", "beam-len").expect("exists");
    let flt_loss = scenario.property("Filter", "flt-loss").expect("exists");
    let freq_ind = scenario.property("LNA+Mixer", "Freq-ind").expect("exists");
    let w = scenario.property("LNA+Mixer", "Diff-pair-W").expect("exists");
    let req_gain = scenario.property("system", "req-sys-gain").expect("exists");
    let req_zerr = scenario.property("system", "req-zerr").expect("exists");

    println!("== step 1: device engineer adjusts the beam length to 13 µm ==\n");
    dpm.execute(Operation::assign(d[2], filter, beam_len, Value::number(13.0)))?;
    dpm.execute(Operation::assign(d[2], filter, flt_loss, Value::number(19.5)))?;

    println!("Fig. 2 — object browser, circuit designer's view:\n");
    println!("{}", object_browser(dpm.network(), "LNA+Mixer"));

    println!("== step 2: circuit designer works the inductor first (smallest feasible set) ==\n");
    dpm.execute(Operation::assign(d[1], analog, freq_ind, Value::number(0.2)))?;
    println!(
        "bound Freq-ind = 0.2 µH; known violations: {}\n",
        dpm.known_violations().len()
    );

    println!("Fig. 3 — constraint & property browser:\n");
    let report = dpm.heuristics().expect("ADPM mines heuristics").clone();
    println!("{}", constraint_pane(dpm.network()));
    println!("{}", property_pane(dpm.network(), &report));

    println!("== circuit designer sizes the differential pair at 3.0 µm (power-aware) ==\n");
    dpm.execute(Operation::assign(d[1], analog, w, Value::number(3.0)))?;

    println!("== step 3: the leader tightens the gain and impedance requirements ==\n");
    dpm.execute(Operation::assign(d[0], top, req_gain, Value::number(30.0)))?;
    dpm.execute(Operation::assign(d[0], top, req_zerr, Value::number(35.0)))?;
    let violated = dpm.known_violations();
    println!("violations now known: {}\n", violated.len());

    println!("Fig. 4 — conflict-resolution view:\n");
    let report = HeuristicReport::mine(dpm.network());
    println!("{}", conflict_view(dpm.network(), &report));
    let insight = report.insight(w);
    println!(
        "Diff-pair-W: alpha = {}, repair direction = {:?}\n",
        insight.alpha, insight.repair_direction
    );

    println!("== step 4: one re-sizing to 3.5 µm fixes both violations ==\n");
    dpm.execute(Operation::assign(d[1], analog, w, Value::number(3.5)).with_repairs(violated))?;
    println!(
        "violations after repair: {} (both fixed with a single iteration)",
        dpm.known_violations().len()
    );
    assert!(dpm.known_violations().is_empty());
    Ok(())
}
