//! A tour of DDDL, the scenario-description language of paper §3.1.2:
//! author a small two-subsystem scenario as text, compile it, inspect the
//! network it produces, and simulate it in both management modes.
//!
//! Run with: `cargo run -p adpm-examples --bin dddl_tour`

use adpm_core::ManagementMode;
use adpm_dddl::compile_source;
use adpm_teamsim::{run_once, SimulationConfig};

const SOURCE: &str = r#"
// A two-board instrumentation front-end: an amplifier board and an ADC
// board share a noise and power budget.

object amp {
    property gain    : interval(1, 1000);
    property noise   : interval(0.5, 50) units "nV";
    property power   : interval(5, 500) units "mW";
}
object adc {
    property bits    : set(8, 10, 12, 14, 16);
    property rate    : interval(0.1, 10) units "Msps";
    property power   : interval(5, 500) units "mW";
}
object spec {
    property max-power : interval(100, 1000) init 400;
    property min-gain  : interval(1, 1000)   init 100;
}

constraint GainNoise: amp.noise >= 200 / amp.gain
    monotonic increasing in amp.noise;
constraint AmpPower:  amp.power >= amp.gain / 4;
constraint AdcPower:  adc.power >= 10 * adc.bits * adc.rate / 4;
constraint RateBits:  adc.rate <= 40 / adc.bits;
constraint MeetGain:  amp.gain >= spec.min-gain;
constraint Budget:    amp.power + adc.power <= spec.max-power;

problem board { constraints: MeetGain, Budget; }
problem amplifier under board {
    outputs: amp.gain, amp.noise, amp.power;
    constraints: GainNoise, AmpPower;
    designer 0;
}
problem converter under board {
    outputs: adc.bits, adc.rate, adc.power;
    constraints: AdcPower, RateBits;
    designer 1;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== compiling {} bytes of DDDL ==\n", SOURCE.len());
    let scenario = compile_source(SOURCE)?;
    println!(
        "network: {} properties, {} constraints, {} designers, {} problems",
        scenario.network().property_count(),
        scenario.network().constraint_count(),
        scenario.designer_count(),
        scenario.ast().problems.len()
    );
    for decl in &scenario.ast().constraints {
        let cid = scenario.constraint(&decl.name).expect("compiled");
        println!(
            "  {:<10} cross-subsystem: {}",
            decl.name,
            scenario.network().is_cross_object(cid)
        );
    }

    println!("\n== simulating in both modes (seed 3) ==\n");
    for mode in [ManagementMode::Conventional, ManagementMode::Adpm] {
        let stats = run_once(&scenario, SimulationConfig::for_mode(mode, 3));
        println!(
            "{mode:?}: completed = {}, operations = {}, evaluations = {}, spins = {}",
            stats.completed, stats.operations, stats.evaluations, stats.spins
        );
    }

    println!("\n== error reporting ==\n");
    let broken = "object o { property x : interval(0, 1); } constraint c: o.y <= 1;";
    match compile_source(broken) {
        Err(e) => println!("as expected, the compiler rejects `o.y`: {e}"),
        Ok(_) => unreachable!("reference to an undeclared property"),
    }
    Ok(())
}
