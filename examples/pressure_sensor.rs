//! Simulates the MEMS pressure-sensing-system design case (paper §3.2) in
//! both management modes side by side and prints a comparison — a one-shot
//! version of the paper's Fig. 9 for a single seed pair, plus a small
//! multi-seed summary.
//!
//! Run with: `cargo run -p adpm-examples --bin pressure_sensor [seed]`

use adpm_core::ManagementMode;
use adpm_scenarios::sensing_system;
use adpm_teamsim::report::comparison_block;
use adpm_teamsim::{run_once, Batch, SimulationConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let scenario = sensing_system();

    println!("== one run per mode (seed {seed}) ==\n");
    for mode in [ManagementMode::Conventional, ManagementMode::Adpm] {
        let stats = run_once(&scenario, SimulationConfig::for_mode(mode, seed));
        println!(
            "{mode:?}: completed = {}, operations = {}, evaluations = {}, spins = {}",
            stats.completed, stats.operations, stats.evaluations, stats.spins
        );
    }

    println!("\n== 12-seed summary ==\n");
    let mut conventional = Batch::new();
    let mut adpm = Batch::new();
    for s in 0..12 {
        conventional.push(run_once(&scenario, SimulationConfig::conventional(s)));
        adpm.push(run_once(&scenario, SimulationConfig::adpm(s)));
    }
    println!("{}", comparison_block("sensing system", &conventional, &adpm));
    println!(
        "ADPM completes the design with {:.1}x fewer designer operations, at the\n\
         cost of {:.1}x more constraint evaluations (automatic tool runs).",
        conventional.operations().mean / adpm.operations().mean,
        adpm.evaluations().mean / conventional.evaluations().mean
    );
}
