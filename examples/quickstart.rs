//! Quickstart: build a small constraint network, bind values, run the
//! DCM's propagation, and read the heuristic support data (`v_F`, `α`,
//! `β`) — the core loop of Active Design Process Management.
//!
//! Run with: `cargo run -p adpm-examples --bin quickstart`

use adpm_constraint::{
    expr::var, propagate, ConstraintNetwork, Domain, HeuristicReport, Property,
    PropagationConfig, Relation, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §2.1 example: a receiver's power budget P_f + P_s <= P_M.
    let mut net = ConstraintNetwork::new();
    let pf = net.add_property(
        Property::new("P-front", "receiver", Domain::interval(0.0, 300.0)).with_units("mW"),
    )?;
    let ps = net.add_property(
        Property::new("P-ser", "receiver", Domain::interval(0.0, 300.0)).with_units("mW"),
    )?;
    let pm = net.add_property(
        Property::new("P-max", "receiver", Domain::interval(100.0, 250.0)).with_units("mW"),
    )?;
    let budget = net.add_constraint("power-budget", var(pf) + var(ps), Relation::Le, var(pm))?;

    // The requirement is fixed by the team leader.
    net.bind(pm, Value::number(200.0))?;

    // The front-end designer commits a power figure...
    net.bind(pf, Value::number(150.0))?;

    // ...and the Design Constraint Manager propagates.
    let outcome = propagate(&mut net, &PropagationConfig::default());
    println!(
        "propagation: {} evaluations, fixpoint = {}",
        outcome.evaluations, outcome.reached_fixpoint
    );

    // The deserializer designer now sees their feasible subspace.
    println!("feasible P-ser:  {}", net.feasible(ps));
    assert_eq!(net.feasible(ps), &Domain::interval(0.0, 50.0));

    // Heuristic support data: α (connected violations), β (connected
    // constraints), relative feasible size.
    let report = HeuristicReport::mine(&net);
    for pid in net.property_ids() {
        let ins = report.insight(pid);
        println!(
            "{:<8}  beta = {}  alpha = {}  |v_F|/|E| = {:.2}",
            net.property(pid).name(),
            ins.beta,
            ins.alpha,
            ins.feasible_relative_size
        );
    }

    // A careless binding violates the budget; α flags the conflict.
    net.bind(ps, Value::number(100.0))?;
    propagate(&mut net, &PropagationConfig::default());
    let report = HeuristicReport::mine(&net);
    println!(
        "\nafter binding P-ser = 100: status({}) = {}, alpha(P-ser) = {}",
        net.constraint(budget).name(),
        net.status(budget),
        report.insight(ps).alpha
    );
    assert!(net.status(budget).is_violated());

    // Repair guidance: both P-front and P-ser should move *down*.
    let ins = report.insight(ps);
    println!(
        "repair direction for P-ser: {:?} (supported by {} violation(s))",
        ins.repair_direction, ins.repair_support
    );
    Ok(())
}
